package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"reviewsolver/internal/core"
	"reviewsolver/internal/obs"
	"reviewsolver/internal/serve/faultinject"
)

// testDaemon builds a daemon with the sample app registered and handler-level
// plumbing for requests; no listener unless a test calls Start itself.
type testDaemon struct {
	d   *Daemon
	met *obs.Registry
	inj *faultinject.Injector
}

func newTestDaemon(t *testing.T, mutate func(*Config)) *testDaemon {
	t.Helper()
	_, img := sampleImage(t)
	met := obs.NewRegistry()
	inj := faultinject.New()
	cfg := Config{Metrics: met, Injector: inj, PoolWorkers: 2}
	if mutate != nil {
		mutate(&cfg)
	}
	d := NewDaemon(cfg)
	d.Registry().RegisterBytes("app.sample", "v1", img)
	return &testDaemon{d: d, met: met, inj: inj}
}

// do runs one request through the daemon handler and returns the recorder.
func (td *testDaemon) do(method, path string, body any) *httptest.ResponseRecorder {
	var rd *bytes.Reader
	if body != nil {
		b, _ := json.Marshal(body)
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	td.d.Handler().ServeHTTP(w, req)
	return w
}

func errorKind(t *testing.T, w *httptest.ResponseRecorder) string {
	t.Helper()
	var eb ErrorBody
	if err := json.Unmarshal(w.Body.Bytes(), &eb); err != nil {
		t.Fatalf("error body %q does not decode: %v", w.Body.String(), err)
	}
	return eb.Error.Kind
}

func TestLocalizeSingleMatchesDirectSolverByteForByte(t *testing.T) {
	data, img := sampleImage(t)
	td := newTestDaemon(t, nil)
	rv := data.Reviews[0]

	w := td.do("POST", "/v1/localize", LocalizeRequest{
		App:         "app.sample",
		Review:      rv.Text,
		PublishedAt: rv.PublishedAt.Format(time.RFC3339),
	})
	if w.Code != http.StatusOK {
		t.Fatalf("localize = %d: %s", w.Code, w.Body.String())
	}

	// Expected bytes, computed locally with the same snapshot and encoder.
	snap, app, err := core.LoadSnapshotBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	res := core.NewWithSnapshot(snap).LocalizeReview(app, rv.Text, rv.PublishedAt)
	want, err := json.Marshal(LocalizeResponse{
		App:     "app.sample",
		Version: "v1",
		Results: []LocalizeResult{ResultToJSON(rv.Text, res)},
	})
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if !bytes.Equal(w.Body.Bytes(), want) {
		t.Fatalf("served response differs from direct solver output:\n got: %s\nwant: %s", w.Body.Bytes(), want)
	}
}

func TestLocalizeBatchPreservesOrder(t *testing.T) {
	data, _ := sampleImage(t)
	td := newTestDaemon(t, nil)
	n := 6
	if n > len(data.Reviews) {
		n = len(data.Reviews)
	}
	reqs := make([]BatchReview, n)
	for i := 0; i < n; i++ {
		reqs[i] = BatchReview{
			Review:      data.Reviews[i].Text,
			PublishedAt: data.Reviews[i].PublishedAt.Format(time.RFC3339),
		}
	}
	w := td.do("POST", "/v1/localize", LocalizeRequest{App: "app.sample", Reviews: reqs})
	if w.Code != http.StatusOK {
		t.Fatalf("batch localize = %d: %s", w.Code, w.Body.String())
	}
	var resp LocalizeResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != n {
		t.Fatalf("batch returned %d results, want %d", len(resp.Results), n)
	}
	for i, r := range resp.Results {
		if r.Review != reqs[i].Review {
			t.Fatalf("result %d is for %q, want %q (order lost)", i, r.Review, reqs[i].Review)
		}
	}
	if got := td.met.Counter(metricReviews).Value(); got != int64(n) {
		t.Fatalf("reviews_served_total = %d, want %d", got, n)
	}
}

func TestLocalizeRequestValidation(t *testing.T) {
	td := newTestDaemon(t, nil)
	for name, tc := range map[string]struct {
		body   any
		status int
		kind   string
	}{
		"missing app":       {LocalizeRequest{Review: "crash"}, 400, "bad_request"},
		"no reviews":        {LocalizeRequest{App: "app.sample"}, 400, "bad_request"},
		"both forms":        {LocalizeRequest{App: "app.sample", Review: "x", Reviews: []BatchReview{{Review: "y"}}}, 400, "bad_request"},
		"bad published_at":  {LocalizeRequest{App: "app.sample", Review: "x", PublishedAt: "yesterday"}, 400, "bad_request"},
		"unknown app":       {LocalizeRequest{App: "app.ghost", Review: "x"}, 404, "unknown_app"},
		"unknown version":   {LocalizeRequest{App: "app.sample", Version: "v99", Review: "x"}, 404, "unknown_app"},
		"malformed body":    {"not json", 400, "bad_request"},
		"classify no body":  {ClassifyRequest{}, 0, ""}, // handled below
		"register no paths": {RegisterRequest{App: "a"}, 0, ""},
	} {
		switch name {
		case "classify no body":
			w := td.do("POST", "/v1/classify", tc.body)
			if w.Code != 400 || errorKind(t, w) != "bad_request" {
				t.Errorf("classify empty = %d/%s, want 400/bad_request", w.Code, errorKind(t, w))
			}
			continue
		case "register no paths":
			w := td.do("POST", "/v1/apps", tc.body)
			if w.Code != 400 || errorKind(t, w) != "bad_request" {
				t.Errorf("register partial = %d/%s, want 400/bad_request", w.Code, errorKind(t, w))
			}
			continue
		}
		w := td.do("POST", "/v1/localize", tc.body)
		if w.Code != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", name, w.Code, tc.status, w.Body.String())
			continue
		}
		if kind := errorKind(t, w); kind != tc.kind {
			t.Errorf("%s: kind %q, want %q", name, kind, tc.kind)
		}
	}
}

func TestClassifyUsesConfiguredClassifier(t *testing.T) {
	td := newTestDaemon(t, func(c *Config) {
		c.Classify = func(text string) bool { return strings.Contains(text, "crash") }
	})
	for review, want := range map[string]bool{
		"the app crashes on login": true,
		"love this app five stars": false,
	} {
		w := td.do("POST", "/v1/classify", ClassifyRequest{Review: review})
		if w.Code != http.StatusOK {
			t.Fatalf("classify = %d: %s", w.Code, w.Body.String())
		}
		var resp ClassifyResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.IsError != want {
			t.Errorf("classify(%q) = %v, want %v", review, resp.IsError, want)
		}
	}
}

func TestAppsAndMetricsEndpoints(t *testing.T) {
	td := newTestDaemon(t, nil)
	// Warm the sample app so /v1/apps shows it live.
	data, _ := sampleImage(t)
	td.do("POST", "/v1/localize", LocalizeRequest{App: "app.sample", Review: data.Reviews[0].Text})

	w := td.do("GET", "/v1/apps", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("apps = %d", w.Code)
	}
	var apps AppsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &apps); err != nil {
		t.Fatal(err)
	}
	if len(apps.Apps) != 1 || apps.Apps[0].App != "app.sample" || apps.Apps[0].State != "live" {
		t.Fatalf("apps listing = %+v, want one live app.sample", apps.Apps)
	}
	if apps.ResidentBytes <= 0 {
		t.Fatalf("resident_bytes = %d, want > 0 with a live snapshot", apps.ResidentBytes)
	}

	m := td.do("GET", "/metrics", nil)
	for _, want := range []string{metricRequests, metricLoads, metricRegistryBytes} {
		if !strings.Contains(m.Body.String(), want) {
			t.Errorf("/metrics missing %s:\n%s", want, m.Body.String())
		}
	}
}

func TestRegisterEndpointServesFromFile(t *testing.T) {
	_, img := sampleImage(t)
	dir := t.TempDir()
	path := dir + "/sample.snap"
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	td := newTestDaemon(t, nil)
	w := td.do("POST", "/v1/apps", RegisterRequest{App: "app.disk", Version: "v7", Path: path})
	if w.Code != http.StatusOK {
		t.Fatalf("register = %d: %s", w.Code, w.Body.String())
	}
	data, _ := sampleImage(t)
	lw := td.do("POST", "/v1/localize", LocalizeRequest{App: "app.disk", Review: data.Reviews[0].Text})
	if lw.Code != http.StatusOK {
		t.Fatalf("localize registered file = %d: %s", lw.Code, lw.Body.String())
	}
	var resp LocalizeResponse
	if err := json.Unmarshal(lw.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Version != "v7" {
		t.Fatalf("served version = %s, want v7", resp.Version)
	}
}

// --- chaos scenarios ---------------------------------------------------------------

// TestChaosLoadFailureIsolation: a failing snapshot load answers 503 with the
// load_failed kind, and a healthy app registered beside it keeps serving.
func TestChaosLoadFailureIsolation(t *testing.T) {
	data, _ := sampleImage(t)
	td := newTestDaemon(t, nil)
	td.d.Registry().RegisterBytes("app.bad", "v1", corruptImage(t))

	w := td.do("POST", "/v1/localize", LocalizeRequest{App: "app.bad", Review: "it crashes"})
	if w.Code != http.StatusServiceUnavailable || errorKind(t, w) != "load_failed" {
		t.Fatalf("corrupt app = %d/%s, want 503/load_failed", w.Code, errorKind(t, w))
	}
	// Second hit inside the quarantine window: rejected with the quarantined
	// kind and a Retry-After hint, no second load attempt.
	w2 := td.do("POST", "/v1/localize", LocalizeRequest{App: "app.bad", Review: "it crashes"})
	if w2.Code != http.StatusServiceUnavailable || errorKind(t, w2) != "quarantined" {
		t.Fatalf("quarantined app = %d/%s, want 503/quarantined", w2.Code, errorKind(t, w2))
	}
	if w2.Header().Get("Retry-After") == "" {
		t.Fatal("quarantined response missing Retry-After header")
	}

	healthy := td.do("POST", "/v1/localize", LocalizeRequest{App: "app.sample", Review: data.Reviews[0].Text})
	if healthy.Code != http.StatusOK {
		t.Fatalf("healthy app beside quarantined one = %d: %s", healthy.Code, healthy.Body.String())
	}
}

// TestChaosSlowLoadDeadline: a load slower than the request timeout answers
// 504, and the deadline counter moves.
func TestChaosSlowLoadDeadline(t *testing.T) {
	td := newTestDaemon(t, func(c *Config) { c.RequestTimeout = 50 * time.Millisecond })
	td.inj.Arm(faultinject.PointSnapshotLoad, faultinject.Fault{Delay: 5 * time.Second, Count: 1})

	data, _ := sampleImage(t)
	w := td.do("POST", "/v1/localize", LocalizeRequest{App: "app.sample", Review: data.Reviews[0].Text})
	if w.Code != http.StatusGatewayTimeout || errorKind(t, w) != "deadline" {
		t.Fatalf("slow load = %d/%s, want 504/deadline", w.Code, errorKind(t, w))
	}
	// The fault is exhausted; the same app loads fine on the next request.
	w2 := td.do("POST", "/v1/localize", LocalizeRequest{App: "app.sample", Review: data.Reviews[0].Text})
	if w2.Code != http.StatusOK {
		t.Fatalf("after slow-load fault = %d: %s", w2.Code, w2.Body.String())
	}
}

// TestChaosQueueSaturation: with one execution slot held by a blocked request
// and the waiting line full, every further arrival sheds deterministically
// with 429 + Retry-After — and everything completes once the block lifts.
func TestChaosQueueSaturation(t *testing.T) {
	const queueDepth = 2
	td := newTestDaemon(t, func(c *Config) {
		c.MaxConcurrent = 1
		c.QueueDepth = queueDepth
		c.RequestTimeout = 30 * time.Second
	})
	gate := make(chan struct{})
	td.inj.Arm(faultinject.PointRequest, faultinject.Fault{Block: gate, Count: 1})

	data, _ := sampleImage(t)
	body := LocalizeRequest{App: "app.sample", Review: data.Reviews[0].Text}

	// One request blocks in execution; queueDepth more wait for the slot.
	var wg sync.WaitGroup
	codes := make([]int, 1+queueDepth)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = td.do("POST", "/v1/localize", body).Code
		}(i)
		if i == 0 {
			waitFor(t, "blocked request holds its slot", func() bool {
				return td.met.Gauge(metricInflight).Value() == 1
			})
		}
	}
	waitFor(t, "waiting line fills", func() bool {
		return td.met.Gauge(metricQueueDepth).Value() == queueDepth
	})

	// The line is full: these arrivals must shed, every one of them.
	const probes = 3
	for i := 0; i < probes; i++ {
		w := td.do("POST", "/v1/localize", body)
		if w.Code != http.StatusTooManyRequests || errorKind(t, w) != "queue_full" {
			t.Fatalf("probe %d = %d/%s, want 429/queue_full", i, w.Code, errorKind(t, w))
		}
		if ra := w.Header().Get("Retry-After"); ra != "1" {
			t.Fatalf("probe %d Retry-After = %q, want \"1\"", i, ra)
		}
	}
	if got := td.met.Counter(metricShed).Value(); got != probes {
		t.Fatalf("shed_total = %d, want exactly %d", got, probes)
	}

	close(gate)
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("admitted request %d = %d, want 200 after the block lifted", i, code)
		}
	}
	if got := td.met.Gauge(metricQueueDepth).Value(); got != 0 {
		t.Fatalf("queue gauge = %d after drain, want 0", got)
	}
	if got := td.met.Gauge(metricInflight).Value(); got != 0 {
		t.Fatalf("inflight gauge = %d after drain, want 0", got)
	}
}

// TestChaosMidRequestCancellation: a client that walks away while its request
// is blocked mid-execution gets the deadline error path, not a hang.
func TestChaosMidRequestCancellation(t *testing.T) {
	td := newTestDaemon(t, nil)
	td.inj.Arm(faultinject.PointRequest, faultinject.Fault{Block: make(chan struct{}), Count: 1})

	data, _ := sampleImage(t)
	b, _ := json.Marshal(LocalizeRequest{App: "app.sample", Review: data.Reviews[0].Text})
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("POST", "/v1/localize", bytes.NewReader(b)).WithContext(ctx)
	w := httptest.NewRecorder()

	done := make(chan struct{})
	go func() {
		defer close(done)
		td.d.Handler().ServeHTTP(w, req)
	}()
	waitFor(t, "request reaches the block", func() bool {
		return td.inj.Fired(faultinject.PointRequest) == 1
	})
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled request never returned")
	}
	if w.Code != http.StatusGatewayTimeout || errorKind(t, w) != "deadline" {
		t.Fatalf("cancelled request = %d/%s, want 504/deadline", w.Code, errorKind(t, w))
	}
	if got := td.met.Counter(metricDeadlines).Value(); got != 1 {
		t.Fatalf("deadline_total = %d, want 1", got)
	}
}

// TestChaosPanicContainment: an injected panic answers 500, increments the
// panic counter, and leaves the daemon serving.
func TestChaosPanicContainment(t *testing.T) {
	td := newTestDaemon(t, nil)
	td.inj.Arm(faultinject.PointRequest, faultinject.Fault{Err: faultinject.ErrPanic, Count: 1})

	data, _ := sampleImage(t)
	body := LocalizeRequest{App: "app.sample", Review: data.Reviews[0].Text}
	w := td.do("POST", "/v1/localize", body)
	if w.Code != http.StatusInternalServerError || errorKind(t, w) != "internal" {
		t.Fatalf("panicking request = %d/%s, want 500/internal", w.Code, errorKind(t, w))
	}
	if got := td.met.Counter(metricPanics).Value(); got != 1 {
		t.Fatalf("panics_total = %d, want 1", got)
	}
	// The daemon survived: the very next request serves normally.
	w2 := td.do("POST", "/v1/localize", body)
	if w2.Code != http.StatusOK {
		t.Fatalf("request after contained panic = %d: %s", w2.Code, w2.Body.String())
	}
}

// TestChaosGracefulShutdown: shutdown drains the in-flight request to a real
// response while new arrivals are refused with 503 shutting_down.
func TestChaosGracefulShutdown(t *testing.T) {
	td := newTestDaemon(t, nil)
	if err := td.d.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	td.inj.Arm(faultinject.PointRequest, faultinject.Fault{Block: gate, Count: 1})

	data, _ := sampleImage(t)
	b, _ := json.Marshal(LocalizeRequest{App: "app.sample", Review: data.Reviews[0].Text})
	url := "http://" + td.d.Addr() + "/v1/localize"

	inflight := make(chan int, 1)
	go func() {
		resp, err := http.Post(url, "application/json", bytes.NewReader(b))
		if err != nil {
			inflight <- -1
			return
		}
		resp.Body.Close()
		inflight <- resp.StatusCode
	}()
	waitFor(t, "in-flight request reaches the block", func() bool {
		return td.inj.Fired(faultinject.PointRequest) == 1
	})

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- td.d.Shutdown(ctx)
	}()
	waitFor(t, "daemon flips to draining", func() bool { return td.d.draining.Load() })

	// New arrivals (through the handler — the listener is closing) refuse
	// with the shutting_down kind instead of being dropped on the floor.
	w := td.do("POST", "/v1/localize", LocalizeRequest{App: "app.sample", Review: data.Reviews[0].Text})
	if w.Code != http.StatusServiceUnavailable || errorKind(t, w) != "shutting_down" {
		t.Fatalf("request during drain = %d/%s, want 503/shutting_down", w.Code, errorKind(t, w))
	}

	close(gate)
	// Drop pooled client conns (incl. speculative never-used dials, which
	// the server holds in StateNew and Shutdown won't reap for 5s) so the
	// drain completes as soon as the in-flight request does.
	http.DefaultClient.CloseIdleConnections()
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown = %v, want clean drain", err)
	}
	if got := <-inflight; got != http.StatusOK {
		t.Fatalf("in-flight request during shutdown = %d, want 200 (drained)", got)
	}
}

// TestChaosHotSwapUnderFire: re-registering an app while requests stream
// against it never produces an error response — old leases drain, new
// requests serve from the replacement.
func TestChaosHotSwapUnderFire(t *testing.T) {
	_, img := sampleImage(t)
	td := newTestDaemon(t, func(c *Config) { c.MaxConcurrent = 4 })
	data, _ := sampleImage(t)
	body := LocalizeRequest{App: "app.sample", Review: data.Reviews[0].Text}

	stop := make(chan struct{})
	errs := make(chan string, 64)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if w := td.do("POST", "/v1/localize", body); w.Code != http.StatusOK {
					select {
					case errs <- fmt.Sprintf("%d: %s", w.Code, w.Body.String()):
					default:
					}
				}
			}
		}()
	}
	for i := 0; i < 5; i++ {
		time.Sleep(10 * time.Millisecond)
		td.d.Registry().RegisterBytes("app.sample", "v1", img)
	}
	close(stop)
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatalf("request failed during hot-swap: %s", e)
	default:
	}
	if got := td.met.Counter(metricHotSwaps).Value(); got != 5 {
		t.Fatalf("hotswaps_total = %d, want 5", got)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
