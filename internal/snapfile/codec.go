package snapfile

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"
)

// Enc is an append-based little-endian payload encoder for section contents.
// It has no failure modes; the resulting []byte goes into Writer.Add.
type Enc struct {
	buf []byte
}

// NewEnc returns an encoder with the given capacity hint.
func NewEnc(capHint int) *Enc { return &Enc{buf: make([]byte, 0, capHint)} }

// Bytes returns the encoded payload.
func (e *Enc) Bytes() []byte { return e.buf }

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a bool as one byte (0 or 1).
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U16 appends a little-endian uint16.
func (e *Enc) U16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }

// U32 appends a little-endian uint32.
func (e *Enc) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// I32 appends a little-endian int32.
func (e *Enc) I32(v int32) { e.U32(uint32(v)) }

// U64 appends a little-endian uint64.
func (e *Enc) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends a little-endian int64.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// F64 appends a little-endian IEEE 754 float64.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Str appends a uint32 length followed by the raw bytes.
func (e *Enc) Str(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Raw appends bytes verbatim, with no length prefix — the caller's framing
// must make the length recoverable (quantized code blocks carry it in their
// header).
func (e *Enc) Raw(b []byte) { e.buf = append(e.buf, b...) }

// StrSlice appends a uint32 count followed by each string.
func (e *Enc) StrSlice(ss []string) {
	e.U32(uint32(len(ss)))
	for _, s := range ss {
		e.Str(s)
	}
}

// StrSlice2 appends a slice of string slices.
func (e *Enc) StrSlice2(ss [][]string) {
	e.U32(uint32(len(ss)))
	for _, s := range ss {
		e.StrSlice(s)
	}
}

// Dec is a sticky-error little-endian payload decoder. After the first
// failure every subsequent read returns a zero value and Err() keeps the
// original typed error, so call sites read whole records linearly and check
// once at the end.
type Dec struct {
	buf []byte
	off int
	err error
	zc  bool
}

// NewDec returns a decoder over a section payload.
func NewDec(payload []byte) *Dec { return &Dec{buf: payload} }

// NewDecZeroCopy returns a decoder whose Str results alias the payload
// instead of copying it. The caller must guarantee the payload bytes stay
// reachable and unmodified for as long as any decoded string is in use —
// the contract LoadSnapshot already imposes for the float sections it views.
func NewDecZeroCopy(payload []byte) *Dec { return &Dec{buf: payload, zc: true} }

// Err returns the first decode failure, or nil. All failures wrap
// ErrCorrupt.
func (d *Dec) Err() error { return d.err }

// Remaining returns the number of unread bytes (0 once an error is sticky).
func (d *Dec) Remaining() int {
	if d.err != nil {
		return 0
	}
	return len(d.buf) - d.off
}

// Done returns d.err, or ErrCorrupt when unread bytes remain — records must
// consume their payload exactly.
func (d *Dec) Done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d trailing bytes after record", ErrCorrupt, len(d.buf)-d.off)
	}
	return nil
}

func (d *Dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: short payload reading %s at offset %d of %d", ErrCorrupt, what, d.off, len(d.buf))
	}
}

func (d *Dec) take(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.buf)-d.off {
		d.fail(what)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	b := d.take(1, "u8")
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a one-byte bool; any value other than 0 or 1 is corrupt.
func (d *Dec) Bool() bool {
	v := d.U8()
	if v > 1 && d.err == nil {
		d.err = fmt.Errorf("%w: bool byte %d", ErrCorrupt, v)
	}
	return v == 1
}

// U16 reads a little-endian uint16.
func (d *Dec) U16() uint16 {
	b := d.take(2, "u16")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (d *Dec) U32() uint32 {
	b := d.take(4, "u32")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// I32 reads a little-endian int32.
func (d *Dec) I32() int32 { return int32(d.U32()) }

// U64 reads a little-endian uint64.
func (d *Dec) U64() uint64 {
	b := d.take(8, "u64")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// F64 reads a little-endian IEEE 754 float64.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Raw reads n verbatim bytes. The result always aliases the payload (raw
// blocks are the zero-copy case by nature); nil on underflow.
func (d *Dec) Raw(n int) []byte { return d.take(n, "raw block") }

// Count reads a uint32 element count and bounds it against the remaining
// payload assuming each element occupies at least minBytesPer bytes. A bogus
// huge count from a corrupt file therefore fails here instead of sizing a
// giant allocation.
func (d *Dec) Count(minBytesPer int) int {
	n := d.U32()
	if d.err != nil {
		return 0
	}
	if minBytesPer < 1 {
		minBytesPer = 1
	}
	if int64(n)*int64(minBytesPer) > int64(d.Remaining()) {
		d.err = fmt.Errorf("%w: count %d exceeds %d remaining bytes", ErrCorrupt, n, d.Remaining())
		return 0
	}
	return int(n)
}

// Str reads a length-prefixed string. In zero-copy mode the result aliases
// the payload; otherwise it is an independent copy. The prefix and the bytes
// are consumed in one fused bounds check — Str dominates IR decoding.
func (d *Dec) Str() string {
	if d.err != nil {
		return ""
	}
	rem := len(d.buf) - d.off
	if rem < 4 {
		d.fail("string length")
		return ""
	}
	n := int(binary.LittleEndian.Uint32(d.buf[d.off:]))
	if n > rem-4 {
		d.off += 4
		d.fail("string")
		return ""
	}
	start := d.off + 4
	d.off = start + n
	if n == 0 {
		return ""
	}
	b := d.buf[start : start+n]
	if d.zc {
		return unsafe.String(&b[0], n)
	}
	return string(b)
}

// StrSlice reads a count-prefixed string slice (nil for count 0, matching
// the natural Go zero value round-trip).
func (d *Dec) StrSlice() []string {
	n := d.Count(4)
	if n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.Str()
	}
	return out
}

// StrArena carves string-slice headers out of pre-sized backing arrays, so
// a payload with hundreds of small string lists decodes with two
// allocations instead of one per list. Callers size it from totals the
// encoder declares in the payload; a count that exceeds the arena is
// corrupt, and a decode that leaves the arena partly unused means the
// declared totals were wrong (check with Drained).
type StrArena struct {
	Elems []string
	Lists [][]string
}

// NewStrArena returns an arena with capacity for elems strings spread over
// lists inner slices (lists only matters for StrSlice2In).
func NewStrArena(elems, lists int) *StrArena {
	return &StrArena{Elems: make([]string, elems), Lists: make([][]string, lists)}
}

// Drained reports whether every arena slot was handed out.
func (a *StrArena) Drained() bool { return len(a.Elems) == 0 && len(a.Lists) == 0 }

// StrSliceIn is StrSlice drawing the backing array from the arena.
func (d *Dec) StrSliceIn(a *StrArena) []string {
	n := d.Count(4)
	if n == 0 {
		return nil
	}
	if n > len(a.Elems) {
		if d.err == nil {
			d.err = fmt.Errorf("%w: string count %d exceeds arena of %d", ErrCorrupt, n, len(a.Elems))
		}
		return nil
	}
	out := a.Elems[:n:n]
	a.Elems = a.Elems[n:]
	for i := range out {
		out[i] = d.Str()
	}
	return out
}

// StrSlice2In is StrSlice2 drawing outer and inner backing arrays from the
// arena.
func (d *Dec) StrSlice2In(a *StrArena) [][]string {
	n := d.Count(4)
	if n == 0 {
		return nil
	}
	if n > len(a.Lists) {
		if d.err == nil {
			d.err = fmt.Errorf("%w: list count %d exceeds arena of %d", ErrCorrupt, n, len(a.Lists))
		}
		return nil
	}
	out := a.Lists[:n:n]
	a.Lists = a.Lists[n:]
	for i := range out {
		out[i] = d.StrSliceIn(a)
	}
	return out
}

// StrSlice2 reads a slice of string slices.
func (d *Dec) StrSlice2() [][]string {
	n := d.Count(4)
	if n == 0 {
		return nil
	}
	out := make([][]string, n)
	for i := range out {
		out[i] = d.StrSlice()
	}
	return out
}
