package snapfile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// fuzzSeedImage is a small but structurally complete container: several
// sections, a float payload, and an empty payload — every shape Open has to
// handle on the happy path.
func fuzzSeedImage() []byte {
	w := NewWriter()
	w.Add(0x10, []byte("catalog-bytes-here"))
	w.Add(0x20, Float64Bytes([]float64{1.5, -2.25, 3.125}))
	w.Add(0x30, nil)
	w.Add(0x40, []byte{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01, 0x02, 0x03})
	return w.Bytes()
}

// typedOpenError reports whether err maps to the package's typed error set —
// the contract is that every corrupt input yields exactly one of these.
func typedOpenError(err error) bool {
	for _, want := range []error{ErrBadMagic, ErrVersion, ErrTruncated, ErrChecksum, ErrMisaligned, ErrCorrupt} {
		if errors.Is(err, want) {
			return true
		}
	}
	return false
}

// FuzzOpen: Open must never panic on hostile bytes, every rejection must be
// a typed error, and every accepted image must serve its sections cleanly.
func FuzzOpen(f *testing.F) {
	img := fuzzSeedImage()
	for _, seed := range fuzzSeedVariants(img) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Open(data)
		if err != nil {
			if !typedOpenError(err) {
				t.Fatalf("Open returned an untyped error: %v", err)
			}
			return
		}
		if r.Len() != len(data) {
			t.Fatalf("Len = %d, input is %d bytes", r.Len(), len(data))
		}
		if r.SectionCount() != len(r.ids) {
			t.Fatalf("SectionCount = %d, ids = %d", r.SectionCount(), len(r.ids))
		}
		for _, id := range r.ids {
			p, ok := r.Section(id)
			if !ok {
				t.Fatalf("validated section %#x not retrievable", id)
			}
			if _, err := r.MustSection(id); err != nil {
				t.Fatalf("MustSection(%#x) = %v on a validated image", id, err)
			}
			if crc, ok := r.SectionChecksum(id); !ok || crc != Checksum(p) {
				t.Fatalf("SectionChecksum(%#x) = %#x/%v, want %#x", id, crc, ok, Checksum(p))
			}
			if len(p)%8 == 0 {
				if _, err := Float64View(p); err != nil {
					t.Fatalf("Float64View on aligned %d-byte section %#x: %v", len(p), id, err)
				}
			}
		}
		if _, ok := r.Section(0xfffffff0); ok {
			t.Fatal("Section returned ok for an absent id")
		}
	})
}

// fuzzSeedVariants derives corrupt-in-interesting-ways mutants from a valid
// image, steering the fuzzer toward each validation branch.
func fuzzSeedVariants(img []byte) [][]byte {
	flip := func(i int) []byte {
		m := append([]byte(nil), img...)
		m[i] ^= 0xFF
		return m
	}
	badVersion := append([]byte(nil), img...)
	binary.LittleEndian.PutUint32(badVersion[8:], Version+7)
	badCount := append([]byte(nil), img...)
	binary.LittleEndian.PutUint32(badCount[12:], 1<<20)
	return [][]byte{
		img,
		nil,
		img[:headerSize/2],
		img[:headerSize],
		img[:len(img)-3],
		flip(0),            // magic
		flip(24),           // flags
		flip(headerSize),   // first section id byte
		flip(len(img) - 1), // last payload byte (checksum)
		badVersion,
		badCount,
	}
}

// TestWriteFuzzSeeds regenerates the committed seed corpus under
// testdata/fuzz/FuzzOpen. Gated so a normal test run never rewrites files:
//
//	REVIEWSOLVER_WRITE_FUZZ_SEEDS=1 go test -run TestWriteFuzzSeeds ./internal/snapfile
func TestWriteFuzzSeeds(t *testing.T) {
	if os.Getenv("REVIEWSOLVER_WRITE_FUZZ_SEEDS") == "" {
		t.Skip("set REVIEWSOLVER_WRITE_FUZZ_SEEDS=1 to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzOpen")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range fuzzSeedVariants(fuzzSeedImage()) {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
		path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
