// Package snapfile implements the versioned binary container behind
// ReviewSolver's on-disk snapshots (.snap files): a fixed header, a section
// table of (id, offset, length, checksum) entries, and 8-byte-aligned
// payloads that can be consumed zero-copy from the loaded (or mmapped) file
// image.
//
// Layout (all integers little-endian):
//
//	offset  0  magic   "RSNAPSF\x00" (8 bytes)
//	offset  8  version uint32 (currently 1)
//	offset 12  count   uint32 (number of sections)
//	offset 16  size    uint64 (total file length, for truncation detection)
//	offset 24  flags   uint32 (bit 0: float payloads are little-endian IEEE 754)
//	offset 28  reserved uint32
//	then count × 32-byte section entries:
//	        id uint32, crc uint32 (CRC-32C of the payload), offset uint64,
//	        length uint64, reserved uint64
//	then the payloads, each starting on an 8-byte boundary (zero padded).
//
// The 8-byte alignment rule means a section holding flattened float64 rows
// can be reinterpreted in place (Float64View) without a per-row copy — the
// property core.LoadSnapshot relies on to rebuild wordvec matrices in
// microseconds. The package is deliberately schema-free: section IDs and
// payload encodings (see Enc/Dec) belong to the caller, so the same
// container serves the catalog table, per-release extractions, the interner
// symbol table, and the app IR.
//
// Versioning policy: any change to the header, the section-entry shape, or
// the meaning of an existing section ID bumps Version; readers reject files
// whose version they do not know (ErrVersion) rather than guessing.
package snapfile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"unsafe"
)

// Version is the current snapshot container format version.
const Version = 1

// flagLittleEndian marks float payloads as little-endian IEEE 754. It is
// the only layout today; the flag exists so a future big-endian writer is
// detectable instead of silently misread.
const flagLittleEndian = 1

const (
	headerSize       = 32
	sectionEntrySize = 32
	align            = 8
)

var magic = [8]byte{'R', 'S', 'N', 'A', 'P', 'S', 'F', 0}

// Typed load errors. Callers match them with errors.Is; every corrupt input
// maps to exactly one of these (never a panic).
var (
	// ErrBadMagic reports a file that is not a snapshot at all.
	ErrBadMagic = errors.New("snapfile: bad magic")
	// ErrVersion reports a snapshot written by an unknown format version.
	ErrVersion = errors.New("snapfile: unsupported format version")
	// ErrTruncated reports a file shorter than its header and section table
	// claim.
	ErrTruncated = errors.New("snapfile: truncated file")
	// ErrChecksum reports a section whose payload does not match its CRC.
	ErrChecksum = errors.New("snapfile: section checksum mismatch")
	// ErrMisaligned reports a section offset off the 8-byte grid.
	ErrMisaligned = errors.New("snapfile: misaligned section offset")
	// ErrCorrupt reports structurally invalid content: duplicate section
	// IDs, section payloads that decode out of bounds, or impossible shapes.
	ErrCorrupt = errors.New("snapfile: corrupt section")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum is the CRC-32C used for section payloads, exported so callers
// can fingerprint payloads they embed (vocabulary tables, catalogs) with
// the same function the container uses.
func Checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// --- writer ---------------------------------------------------------------------

// Writer assembles a snapshot file. Sections are emitted in Add order, so a
// deterministic caller produces byte-identical files.
type Writer struct {
	ids      []uint32
	payloads [][]byte
}

// NewWriter returns an empty snapshot writer.
func NewWriter() *Writer { return &Writer{} }

// Add appends one section. Adding a duplicate ID is a programming error and
// panics (readers reject such files anyway).
func (w *Writer) Add(id uint32, payload []byte) {
	for _, have := range w.ids {
		if have == id {
			panic(fmt.Sprintf("snapfile: duplicate section id %#x", id))
		}
	}
	w.ids = append(w.ids, id)
	w.payloads = append(w.payloads, payload)
}

// Bytes assembles the file image.
func (w *Writer) Bytes() []byte {
	tableEnd := headerSize + sectionEntrySize*len(w.ids)
	offsets := make([]uint64, len(w.ids))
	size := pad8(tableEnd)
	for i, p := range w.payloads {
		offsets[i] = uint64(size)
		size = pad8(size + len(p))
	}
	out := make([]byte, size)
	copy(out, magic[:])
	le := binary.LittleEndian
	le.PutUint32(out[8:], Version)
	le.PutUint32(out[12:], uint32(len(w.ids)))
	le.PutUint64(out[16:], uint64(size))
	le.PutUint32(out[24:], flagLittleEndian)
	for i, id := range w.ids {
		e := out[headerSize+sectionEntrySize*i:]
		le.PutUint32(e[0:], id)
		le.PutUint32(e[4:], Checksum(w.payloads[i]))
		le.PutUint64(e[8:], offsets[i])
		le.PutUint64(e[16:], uint64(len(w.payloads[i])))
		copy(out[offsets[i]:], w.payloads[i])
	}
	return out
}

// WriteFile assembles the image and writes it to path.
func (w *Writer) WriteFile(path string) error {
	return os.WriteFile(path, w.Bytes(), 0o644)
}

func pad8(n int) int { return (n + align - 1) &^ (align - 1) }

// --- reader ---------------------------------------------------------------------

// Reader is a validated snapshot image. Section payloads alias the backing
// byte slice — they are views, not copies — so the caller must treat them
// as read-only for the reader's lifetime.
type Reader struct {
	data  []byte
	ids   []uint32
	spans [][]byte
	crcs  []uint32
}

// OpenFile reads and validates a snapshot file.
func OpenFile(path string) (*Reader, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Open(data)
}

// Open validates a snapshot image: magic, version, declared size, and for
// every section its alignment, bounds, and checksum. All failure modes are
// typed errors; Open never panics on hostile input.
func Open(data []byte) (*Reader, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header", ErrTruncated, len(data), headerSize)
	}
	if [8]byte(data[:8]) != magic {
		return nil, fmt.Errorf("%w: got % x", ErrBadMagic, data[:8])
	}
	le := binary.LittleEndian
	if v := le.Uint32(data[8:]); v != Version {
		return nil, fmt.Errorf("%w: file version %d, reader supports %d", ErrVersion, v, Version)
	}
	if flags := le.Uint32(data[24:]); flags&flagLittleEndian == 0 {
		return nil, fmt.Errorf("%w: big-endian float payloads are not supported", ErrVersion)
	}
	if !hostLittleEndian() {
		return nil, fmt.Errorf("%w: big-endian hosts are not supported", ErrVersion)
	}
	count := int(le.Uint32(data[12:]))
	if size := le.Uint64(data[16:]); size != uint64(len(data)) {
		return nil, fmt.Errorf("%w: header declares %d bytes, file has %d", ErrTruncated, size, len(data))
	}
	tableEnd := headerSize + sectionEntrySize*count
	if count < 0 || tableEnd > len(data) {
		return nil, fmt.Errorf("%w: section table for %d sections exceeds the file", ErrTruncated, count)
	}
	r := &Reader{data: data, ids: make([]uint32, 0, count), spans: make([][]byte, 0, count), crcs: make([]uint32, 0, count)}
	seen := make(map[uint32]struct{}, count)
	for i := 0; i < count; i++ {
		e := data[headerSize+sectionEntrySize*i:]
		id := le.Uint32(e[0:])
		crc := le.Uint32(e[4:])
		off := le.Uint64(e[8:])
		length := le.Uint64(e[16:])
		if _, dup := seen[id]; dup {
			return nil, fmt.Errorf("%w: duplicate section id %#x", ErrCorrupt, id)
		}
		seen[id] = struct{}{}
		if off%align != 0 {
			return nil, fmt.Errorf("%w: section %#x at offset %d", ErrMisaligned, id, off)
		}
		if off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, fmt.Errorf("%w: section %#x spans [%d, %d) beyond %d bytes",
				ErrTruncated, id, off, off+length, len(data))
		}
		payload := data[off : off+length : off+length]
		if got := Checksum(payload); got != crc {
			return nil, fmt.Errorf("%w: section %#x crc %#08x, want %#08x", ErrChecksum, id, got, crc)
		}
		r.ids = append(r.ids, id)
		r.spans = append(r.spans, payload)
		r.crcs = append(r.crcs, crc)
	}
	return r, nil
}

// SectionChecksum returns the CRC-32C of a section's payload, as validated
// by Open — callers comparing a payload against a known fingerprint can use
// it instead of rehashing the bytes.
func (r *Reader) SectionChecksum(id uint32) (uint32, bool) {
	for i, have := range r.ids {
		if have == id {
			return r.crcs[i], true
		}
	}
	return 0, false
}

// Section returns the payload of the section with the given ID.
func (r *Reader) Section(id uint32) ([]byte, bool) {
	for i, have := range r.ids {
		if have == id {
			return r.spans[i], true
		}
	}
	return nil, false
}

// MustSection is Section returning ErrCorrupt when the section is absent —
// the common case for schema-required sections.
func (r *Reader) MustSection(id uint32) ([]byte, error) {
	if p, ok := r.Section(id); ok {
		return p, nil
	}
	return nil, fmt.Errorf("%w: missing section %#x", ErrCorrupt, id)
}

// SectionCount returns the number of sections in the file.
func (r *Reader) SectionCount() int { return len(r.ids) }

// Len returns the total file length in bytes.
func (r *Reader) Len() int { return len(r.data) }

func hostLittleEndian() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// --- zero-copy float blocks ------------------------------------------------------

// Float64View reinterprets a section payload as a []float64 without copying
// when the payload is 8-byte aligned in memory (it always is for payloads
// handed out by Reader over a heap-allocated or mmapped image); a misaligned
// slice falls back to one copy. The length must be a multiple of 8 bytes.
func Float64View(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("%w: float block of %d bytes is not a multiple of 8", ErrCorrupt, len(b))
	}
	if len(b) == 0 {
		return nil, nil
	}
	if uintptr(unsafe.Pointer(&b[0]))%align == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8), nil
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, nil
}

// Float64Bytes views a []float64 as its underlying bytes for writing. The
// returned slice aliases f; callers must not mutate it.
func Float64Bytes(f []float64) []byte {
	if len(f) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&f[0])), 8*len(f))
}
