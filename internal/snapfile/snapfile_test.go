package snapfile

import (
	"encoding/binary"
	"errors"
	"math"
	"path/filepath"
	"testing"
)

// sample builds a small two-section file image for corruption tests.
func sample(t *testing.T) []byte {
	t.Helper()
	w := NewWriter()
	e := NewEnc(64)
	e.Str("hello")
	e.U32(7)
	e.StrSlice([]string{"a", "bb", "ccc"})
	w.Add(1, e.Bytes())
	w.Add(2, Float64Bytes([]float64{1, 0.5, -0.25, math.Pi}))
	return w.Bytes()
}

func TestRoundTrip(t *testing.T) {
	img := sample(t)
	r, err := Open(img)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if r.SectionCount() != 2 || r.Len() != len(img) {
		t.Fatalf("got %d sections / %d bytes", r.SectionCount(), r.Len())
	}
	p, err := r.MustSection(1)
	if err != nil {
		t.Fatalf("MustSection(1): %v", err)
	}
	d := NewDec(p)
	if s := d.Str(); s != "hello" {
		t.Errorf("Str = %q", s)
	}
	if v := d.U32(); v != 7 {
		t.Errorf("U32 = %d", v)
	}
	if ss := d.StrSlice(); len(ss) != 3 || ss[2] != "ccc" {
		t.Errorf("StrSlice = %v", ss)
	}
	if err := d.Done(); err != nil {
		t.Errorf("Done: %v", err)
	}
	fp, err := r.MustSection(2)
	if err != nil {
		t.Fatalf("MustSection(2): %v", err)
	}
	fs, err := Float64View(fp)
	if err != nil {
		t.Fatalf("Float64View: %v", err)
	}
	if len(fs) != 4 || fs[3] != math.Pi {
		t.Errorf("floats = %v", fs)
	}
	if _, ok := r.Section(99); ok {
		t.Error("Section(99) unexpectedly present")
	}
	if _, err := r.MustSection(99); !errors.Is(err, ErrCorrupt) {
		t.Errorf("MustSection(99) = %v, want ErrCorrupt", err)
	}
}

func TestWriteFileDeterministic(t *testing.T) {
	a, b := sample(t), sample(t)
	if string(a) != string(b) {
		t.Fatal("two identical builds produced different bytes")
	}
	path := filepath.Join(t.TempDir(), "x.snap")
	w := NewWriter()
	w.Add(1, []byte("payload"))
	if err := w.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := OpenFile(path); err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if _, err := OpenFile(filepath.Join(t.TempDir(), "missing.snap")); err == nil {
		t.Fatal("OpenFile on a missing path succeeded")
	}
}

// TestOpenCorrupt is the table-driven corrupt-input matrix the satellite
// asks for: every mutation must surface as its specific typed error, never
// a panic.
func TestOpenCorrupt(t *testing.T) {
	le := binary.LittleEndian
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"empty file", func(b []byte) []byte { return nil }, ErrTruncated},
		{"shorter than header", func(b []byte) []byte { return b[:16] }, ErrTruncated},
		{"truncated body", func(b []byte) []byte { return b[:len(b)-8] }, ErrTruncated},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, ErrBadMagic},
		{"unsupported version", func(b []byte) []byte { le.PutUint32(b[8:], Version+1); return b }, ErrVersion},
		{"version zero", func(b []byte) []byte { le.PutUint32(b[8:], 0); return b }, ErrVersion},
		{"big-endian flag", func(b []byte) []byte { le.PutUint32(b[24:], 0); return b }, ErrVersion},
		{"declared size too large", func(b []byte) []byte { le.PutUint64(b[16:], uint64(len(b)+8)); return b }, ErrTruncated},
		{"declared size too small", func(b []byte) []byte { le.PutUint64(b[16:], uint64(len(b)-8)); return b }, ErrTruncated},
		{"section table beyond file", func(b []byte) []byte {
			le.PutUint32(b[12:], 1<<20)
			return b
		}, ErrTruncated},
		{"checksum mismatch", func(b []byte) []byte { b[len(b)-9] ^= 0xff; return b }, ErrChecksum},
		{"crc field flipped", func(b []byte) []byte { b[headerSize+4] ^= 1; return b }, ErrChecksum},
		{"misaligned section offset", func(b []byte) []byte {
			off := le.Uint64(b[headerSize+8:])
			le.PutUint64(b[headerSize+8:], off+1)
			return b
		}, ErrMisaligned},
		{"section beyond file", func(b []byte) []byte {
			le.PutUint64(b[headerSize+8:], uint64(len(b)))
			le.PutUint64(b[headerSize+16:], 64)
			return b
		}, ErrTruncated},
		{"section length overflow", func(b []byte) []byte {
			le.PutUint64(b[headerSize+16:], math.MaxUint64)
			return b
		}, ErrTruncated},
		{"duplicate section id", func(b []byte) []byte {
			id := le.Uint32(b[headerSize:])
			le.PutUint32(b[headerSize+sectionEntrySize:], id)
			return b
		}, ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			img := tc.mutate(sample(t))
			r, err := Open(img)
			if r != nil || err == nil {
				t.Fatalf("Open succeeded on %s", tc.name)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Open = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestDuplicateAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with a duplicate id did not panic")
		}
	}()
	w := NewWriter()
	w.Add(1, nil)
	w.Add(1, nil)
}

func TestDecPrimitives(t *testing.T) {
	e := NewEnc(0)
	e.U8(3)
	e.Bool(true)
	e.Bool(false)
	e.I32(-5)
	e.U64(1 << 40)
	e.I64(-9)
	e.F64(2.5)
	e.StrSlice2([][]string{{"x"}, nil})
	d := NewDec(e.Bytes())
	if d.U8() != 3 || !d.Bool() || d.Bool() || d.I32() != -5 ||
		d.U64() != 1<<40 || d.I64() != -9 || d.F64() != 2.5 {
		t.Fatal("primitive round trip mismatch")
	}
	ss := d.StrSlice2()
	if len(ss) != 2 || len(ss[0]) != 1 || ss[0][0] != "x" || ss[1] != nil {
		t.Fatalf("StrSlice2 = %v", ss)
	}
	if err := d.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

func TestDecStickyErrors(t *testing.T) {
	t.Run("short payload", func(t *testing.T) {
		d := NewDec([]byte{1, 2})
		_ = d.U64()
		if !errors.Is(d.Err(), ErrCorrupt) {
			t.Fatalf("Err = %v", d.Err())
		}
		// Sticky: every later read is a zero value, no panic.
		if d.U32() != 0 || d.Str() != "" || d.StrSlice() != nil {
			t.Fatal("reads after error were not zero")
		}
		if !errors.Is(d.Done(), ErrCorrupt) {
			t.Fatal("Done lost the sticky error")
		}
	})
	t.Run("bogus count", func(t *testing.T) {
		e := NewEnc(0)
		e.U32(1 << 30)
		d := NewDec(e.Bytes())
		if n := d.Count(4); n != 0 || !errors.Is(d.Err(), ErrCorrupt) {
			t.Fatalf("Count = %d, Err = %v", n, d.Err())
		}
	})
	t.Run("string length past end", func(t *testing.T) {
		e := NewEnc(0)
		e.U32(100)
		d := NewDec(e.Bytes())
		if d.Str() != "" || !errors.Is(d.Err(), ErrCorrupt) {
			t.Fatalf("Err = %v", d.Err())
		}
	})
	t.Run("bad bool byte", func(t *testing.T) {
		d := NewDec([]byte{7})
		d.Bool()
		if !errors.Is(d.Err(), ErrCorrupt) {
			t.Fatalf("Err = %v", d.Err())
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		d := NewDec([]byte{0, 0, 0, 0, 9})
		_ = d.U32()
		if !errors.Is(d.Done(), ErrCorrupt) {
			t.Fatalf("Done = %v", d.Done())
		}
	})
}

func TestFloat64View(t *testing.T) {
	if _, err := Float64View(make([]byte, 12)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("non-multiple-of-8 view: %v", err)
	}
	v, err := Float64View(nil)
	if err != nil || v != nil {
		t.Fatalf("empty view: %v, %v", v, err)
	}
	// Aligned: zero copy (the view aliases the bytes).
	f := []float64{1, 2, 3}
	b := Float64Bytes(f)
	got, err := Float64View(b)
	if err != nil {
		t.Fatalf("aligned view: %v", err)
	}
	got[0] = 42
	if f[0] != 42 {
		t.Fatal("aligned view did not alias the source")
	}
	// Misaligned: falls back to a decode copy with identical values.
	raw := make([]byte, 8*2+1)
	binary.LittleEndian.PutUint64(raw[1:], math.Float64bits(1.5))
	binary.LittleEndian.PutUint64(raw[9:], math.Float64bits(-2.5))
	got, err = Float64View(raw[1:])
	if err != nil {
		t.Fatalf("misaligned view: %v", err)
	}
	if len(got) != 2 || got[0] != 1.5 || got[1] != -2.5 {
		t.Fatalf("misaligned view = %v", got)
	}
	if Float64Bytes(nil) != nil {
		t.Fatal("Float64Bytes(nil) != nil")
	}
}
