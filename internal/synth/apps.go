package synth

// appSpec describes one evaluation app to generate.
type appSpec struct {
	pkg      string
	name     string
	domain   string
	versions int // number of APK releases to generate
	// paperVersions is the #APK column of Table 6 (reported, not generated:
	// generating 551 releases would only replicate identical classes).
	paperVersions int
	hasBugReports bool
	hasRelNotes   bool
	reviews       int
}

// table6Apps are the 18 evaluation apps (Table 6). The bug-report flag
// marks the 8 apps of Table 8; the release-note flag marks the 6 apps of
// Table 9.
var table6Apps = []appSpec{
	{pkg: "org.mariotaku.twidere", name: "Twidere", domain: "social", versions: 6, paperVersions: 12, hasBugReports: true, reviews: 450},
	{pkg: "com.zegoggles.smssync", name: "SMS Backup+", domain: "messaging", versions: 6, paperVersions: 44, reviews: 620},
	{pkg: "org.thoughtcrime.securesms", name: "Signal", domain: "messaging", versions: 8, paperVersions: 47, hasBugReports: true, reviews: 400},
	{pkg: "com.totsp.crossword.shortyz", name: "Shortyz Crosswords", domain: "games", versions: 4, paperVersions: 9, reviews: 520},
	{pkg: "com.fsck.k9", name: "K-9 Mail", domain: "mail", versions: 8, paperVersions: 80, hasBugReports: true, hasRelNotes: true, reviews: 480},
	{pkg: "com.andrewshu.android.reddit", name: "rif is fun for Reddit", domain: "social", versions: 6, paperVersions: 59, reviews: 380},
	{pkg: "fr.xplod.focal", name: "Focal", domain: "media", versions: 1, paperVersions: 1, reviews: 560},
	{pkg: "org.geometerplus.zlibrary.ui.android", name: "FBReader", domain: "reader", versions: 6, paperVersions: 35, reviews: 300},
	{pkg: "com.battlelancer.seriesguide", name: "SeriesGuide", domain: "media", versions: 8, paperVersions: 109, hasBugReports: true, hasRelNotes: true, reviews: 460},
	{pkg: "org.wordpress.android", name: "WordPress", domain: "social", versions: 8, paperVersions: 205, hasBugReports: true, hasRelNotes: true, reviews: 430},
	{pkg: "com.kmagic.solitaire", name: "Solitaire", domain: "games", versions: 1, paperVersions: 1, reviews: 260},
	{pkg: "org.coolreader", name: "Cool Reader", domain: "reader", versions: 4, paperVersions: 7, reviews: 420},
	{pkg: "cgeo.geocaching", name: "Cgeo", domain: "maps", versions: 8, paperVersions: 93, hasBugReports: true, hasRelNotes: true, reviews: 320},
	{pkg: "com.joulespersecond.seattlebusbot", name: "OneBusAway", domain: "maps", versions: 6, paperVersions: 66, hasBugReports: true, hasRelNotes: true, reviews: 350},
	{pkg: "com.achep.acdisplay", name: "AcDisplay", domain: "tools", versions: 6, paperVersions: 31, reviews: 500},
	{pkg: "de.danoeh.antennapod", name: "AntennaPod", domain: "media", versions: 5, paperVersions: 11, hasBugReports: true, hasRelNotes: true, reviews: 280},
	{pkg: "com.frostwire.android", name: "FrostWire", domain: "tools", versions: 8, paperVersions: 271, reviews: 470},
	{pkg: "com.ichi2.anki", name: "AnkiDroid", domain: "tools", versions: 8, paperVersions: 551, reviews: 370},
}

// table14Apps are the 10 additional apps used for the overfitting check
// (Table 14).
var table14Apps = []appSpec{
	{pkg: "dev.msfjarvis.aps", name: "Password Store", domain: "tools", versions: 3, paperVersions: 12, reviews: 60},
	{pkg: "com.irccloud.android", name: "IRCCloud", domain: "messaging", versions: 4, paperVersions: 25, reviews: 180},
	{pkg: "com.iskrembilen.quasseldroid", name: "Quasseldroid IRC", domain: "messaging", versions: 3, paperVersions: 9, reviews: 80},
	{pkg: "org.primftpd", name: "primitive ftpd", domain: "tools", versions: 3, paperVersions: 14, reviews: 55},
	{pkg: "com.seafile.seadroid2", name: "Seafile", domain: "tools", versions: 4, paperVersions: 30, reviews: 160},
	{pkg: "com.javiersantos.mlmanager", name: "ML Manager", domain: "tools", versions: 2, paperVersions: 6, reviews: 50},
	{pkg: "net.cyclestreets", name: "CycleStreets", domain: "maps", versions: 4, paperVersions: 40, reviews: 190},
	{pkg: "ca.mimic.apphangar", name: "Hangar", domain: "tools", versions: 3, paperVersions: 12, reviews: 150},
	{pkg: "com.qbittorrent.client", name: "qBittorrent", domain: "tools", versions: 4, paperVersions: 18, reviews: 140},
	{pkg: "org.mozilla.mozstumbler", name: "MozStumbler", domain: "maps", versions: 3, paperVersions: 20, reviews: 130},
}

// Table6Specs exposes the Table 6 inventory for the experiment runner.
func Table6Specs() []AppInfo {
	return specInfos(table6Apps)
}

// Table14Specs exposes the Table 14 inventory.
func Table14Specs() []AppInfo {
	return specInfos(table14Apps)
}

// AppInfo is the public view of an app specification.
type AppInfo struct {
	Package       string
	Name          string
	Domain        string
	PaperVersions int
	Versions      int
	HasBugReports bool
	HasRelNotes   bool
}

func specInfos(specs []appSpec) []AppInfo {
	out := make([]AppInfo, len(specs))
	for i, s := range specs {
		out[i] = AppInfo{
			Package:       s.pkg,
			Name:          s.name,
			Domain:        s.domain,
			PaperVersions: s.paperVersions,
			Versions:      s.versions,
			HasBugReports: s.hasBugReports,
			HasRelNotes:   s.hasRelNotes,
		}
	}
	return out
}
