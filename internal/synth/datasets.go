package synth

import (
	"fmt"
	"math/rand"
	"strings"

	"reviewsolver/internal/ctxinfo"
	"reviewsolver/internal/textclass"
)

// GenerateTable6 generates the 18 evaluation apps (Table 6) with their
// review corpora and ground-truth documents.
func GenerateTable6(seed int64) []*AppData {
	out := make([]*AppData, len(table6Apps))
	for i, spec := range table6Apps {
		out[i] = GenerateApp(spec, seed+int64(i)*7919)
	}
	return out
}

// GenerateTable14 generates the 10 additional apps of the overfitting
// check (Table 14).
func GenerateTable14(seed int64) []*AppData {
	out := make([]*AppData, len(table14Apps))
	for i, spec := range table14Apps {
		out[i] = GenerateApp(spec, seed+100000+int64(i)*104729)
	}
	return out
}

// trickyNegative generates praise that *mentions* bugs/crashes without
// reporting one — the false positives the paper analyzes in §5.2 ("the
// objects that user really wanted to describe are some fixed bugs ... or
// bugs of other apps"). The texts are combinatorial, so a classifier can
// only separate them from real complaints through word interactions
// ("crash … fixed"), not by memorizing strings.
func trickyNegative(rng *rand.Rand) string {
	symptom := pickStr(rng, "crash", "bug", "error", "freeze", "glitch", "problem")
	origin := pickStr(rng, "from the last version", "from march", "i reported",
		"on the old release", "everyone complained about", "with attachments")
	resolution := pickStr(rng, "has been fixed", "is gone now", "got resolved quickly",
		"was solved within days", "disappeared after the update", "never came back")
	praise := pickStr(rng, "thank you!", "great job devs.", "love it.",
		"works perfectly now.", "five stars.", "really impressed.")
	switch rng.Intn(4) {
	case 0:
		return fmt.Sprintf("The %s %s %s, %s", symptom, origin, resolution, praise)
	case 1:
		return fmt.Sprintf("No more %ss after the update, %s", symptom, praise)
	case 2:
		return fmt.Sprintf("This app helped me find why my other apps had a %s, %s", symptom, praise)
	default:
		return fmt.Sprintf("Used to have a %s %s but it %s, %s", symptom, origin, resolution, praise)
	}
}

func pickStr(rng *rand.Rand, opts ...string) string {
	return opts[rng.Intn(len(opts))]
}

// TrainingCorpus builds the balanced classifier training set of §3.2.2:
// 700 function-error reviews and 700 other reviews. A slice of each side is
// deliberately hard — implicit error descriptions among the positives,
// bug-vocabulary praise among the negatives — so the classifier comparison
// reproduces the Table 2 spread instead of saturating.
func TrainingCorpus(seed int64) []textclass.Document {
	rng := rand.New(rand.NewSource(seed))
	feats := allFeatures()
	docs := make([]textclass.Document, 0, 1400)
	for i := 0; i < 700; i++ {
		var text string
		if i%10 == 0 {
			text = borderline(rng)
		} else {
			f := feats[rng.Intn(len(feats))]
			text = errorReviewText(pickContext(f, rng), f, rng)
		}
		docs = append(docs, textclass.Document{Text: text, Label: true})
	}
	for i := 0; i < 700; i++ {
		var text string
		switch {
		case i%7 == 0:
			text = borderline(rng)
		case i%4 == 0:
			text = trickyNegative(rng)
		default:
			text = nonErrorReviewText(feats, rng)
		}
		docs = append(docs, textclass.Document{Text: text, Label: false})
	}
	return docs
}

// allFeatures flattens the feature library (common + all domains).
func allFeatures() []feature {
	feats := append([]feature(nil), commonFeatures...)
	for _, domain := range []string{"mail", "messaging", "social", "reader", "media", "maps", "games", "tools"} {
		feats = append(feats, featureLibrary[domain]...)
	}
	return feats
}

// CiurumeleaDataset reproduces the shape of the labeled dataset of
// Ciurumelea et al. used in Table 7: 199 reviews, 87 of them function-error
// related. Its reviews are mostly explicit, so precision and recall are
// both high.
func CiurumeleaDataset(seed int64) []textclass.Document {
	rng := rand.New(rand.NewSource(seed))
	feats := allFeatures()
	docs := make([]textclass.Document, 0, 199)
	for i := 0; i < 87; i++ {
		var text string
		if i%8 == 0 {
			// A few implicitly phrased errors the training set never saw.
			text = implicitError(rng)
		} else {
			f := feats[rng.Intn(len(feats))]
			text = errorReviewText(pickContext(f, rng), f, rng)
		}
		docs = append(docs, textclass.Document{Text: text, Label: true})
	}
	for i := 0; i < 112; i++ {
		var text string
		if i%8 == 0 {
			text = trickyNegative(rng)
		} else {
			text = nonErrorReviewText(feats, rng)
		}
		docs = append(docs, textclass.Document{Text: text, Label: false})
	}
	shuffle(docs, rng)
	return docs
}

// implicitErrorTemplates describe errors without error vocabulary — the
// reviews the paper's classifier misses (§5.2 false negatives), which is
// what depresses recall on the Maalej dataset.
var implicitErrorTemplates = []string{
	"Slow on tablets. In need of a major update. Images not as crisp as on other viewers.",
	"It is hard to load anything lately.",
	"The screen just stays black when i come back to it.",
	"Everything takes forever since last week.",
	"My battery drains twice as fast with this installed.",
	"Half of my library simply vanished.",
	"The text looks garbled on my device.",
	"It eats all my storage within days.",
	"I had to restart my phone twice today because of this.",
	"Scrolling feels like wading through mud now.",
}

// borderline generates reviews human annotators genuinely disagree on —
// occasional hiccups that may or may not be function errors. The training
// corpus labels them positive 42% of the time, mirroring annotator
// disagreement; this irreducible ambiguity is what spreads the Table 2
// classifiers apart (threshold-biased learners like naive Bayes and MaxEnt
// call them all errors, gaining recall and losing precision).
func borderline(rng *rand.Rand) string {
	glitch := pickStr(rng, "doesn't refresh right away", "arrives late",
		"needs a second tap", "takes a retry", "logged me out once",
		"skipped a beat", "flickers briefly", "loses my place")
	thing := pickStr(rng, "the widget", "a notification", "the sync",
		"the feed", "the playlist", "the download", "the login", "the search")
	when := pickStr(rng, "sometimes", "once in a while", "occasionally",
		"every now and then", "on rare occasions")
	tail := pickStr(rng, "but it's fine otherwise.", "not a big deal.",
		"still usable though.", "might just be my phone.", "anyone else?", "")
	return fmt.Sprintf("%s %s %s %s", strings.ToUpper(when[:1])+when[1:], thing, glitch, tail)
}

// implicitError generates an implicit error description combinatorially.
func implicitError(rng *rand.Rand) string {
	if rng.Intn(3) == 0 {
		return implicitErrorTemplates[rng.Intn(len(implicitErrorTemplates))]
	}
	subject := pickStr(rng, "the screen", "scrolling", "my library", "the text",
		"everything", "the whole thing", "loading", "startup")
	symptom := pickStr(rng, "takes forever", "just stays black", "feels like wading through mud",
		"vanished overnight", "looks garbled", "eats all my storage",
		"drains the battery twice as fast", "is hard to load lately")
	coda := pickStr(rng, "on my tablet.", "since last week.", "on this device.",
		"no matter what i do.", "after the newest release.", "")
	return fmt.Sprintf("%s %s %s", strings.ToUpper(subject[:1])+subject[1:], symptom, coda)
}

// MaalejDataset reproduces the shape of the Maalej et al. dataset of
// Table 7: 747 reviews, 369 function-error related, half of which
// describe the error implicitly (no "crash"/"bug"/"error" vocabulary), so
// recall drops to the paper's ~66% while precision stays high.
func MaalejDataset(seed int64) []textclass.Document {
	rng := rand.New(rand.NewSource(seed))
	feats := allFeatures()
	docs := make([]textclass.Document, 0, 747)
	for i := 0; i < 369; i++ {
		var text string
		if i%2 == 0 {
			text = implicitErrorTemplates[rng.Intn(len(implicitErrorTemplates))]
		} else {
			f := feats[rng.Intn(len(feats))]
			text = errorReviewText(pickContext(f, rng), f, rng)
		}
		docs = append(docs, textclass.Document{Text: text, Label: true})
	}
	for i := 0; i < 378; i++ {
		docs = append(docs, textclass.Document{
			Text:  nonErrorReviewText(feats, rng),
			Label: false,
		})
	}
	shuffle(docs, rng)
	return docs
}

func shuffle(docs []textclass.Document, rng *rand.Rand) {
	rng.Shuffle(len(docs), func(i, j int) { docs[i], docs[j] = docs[j], docs[i] })
}

// ScoredReview pairs a review text with its star score and truth label,
// for the Table 3 / Table 4 experiments.
type ScoredReview struct {
	Text    string
	Score   int
	IsError bool
}

// scoreSampleShape is Table 3: reviews per score and error reviews per
// score in the manually-annotated 900-review sample.
var scoreSampleShape = []struct{ score, total, errors int }{
	{1, 150, 112},
	{2, 97, 64},
	{3, 118, 75},
	{4, 155, 64},
	{5, 380, 18},
}

// ScoreSample generates the 900-review sample of Table 3 with exactly the
// paper's per-score counts.
func ScoreSample(seed int64) []ScoredReview {
	rng := rand.New(rand.NewSource(seed))
	feats := allFeatures()
	var out []ScoredReview
	for _, row := range scoreSampleShape {
		for i := 0; i < row.total; i++ {
			r := ScoredReview{Score: row.score}
			if i < row.errors {
				f := feats[rng.Intn(len(feats))]
				r.IsError = true
				r.Text = errorReviewText(pickContext(f, rng), f, rng)
				if row.score >= 4 {
					// High-scoring error reviews praise first.
					r.Text = "Really like this app overall. " + r.Text
				}
			} else {
				r.Text = nonErrorReviewText(feats, rng)
			}
			out = append(out, r)
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// ContextSample draws n function-error reviews (with at least four words)
// from the Table 6 corpora and returns their generator-truth context types
// — the Table 1 annotation study.
func ContextSample(apps []*AppData, n int, seed int64) []ctxinfo.Type {
	rng := rand.New(rand.NewSource(seed))
	var pool []ctxinfo.Type
	for _, app := range apps {
		for _, r := range app.ErrorReviews() {
			if countWords(r.Text) >= 4 {
				pool = append(pool, r.Context)
			}
		}
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if n > len(pool) {
		n = len(pool)
	}
	return pool[:n]
}

func countWords(s string) int {
	n := 0
	inWord := false
	for i := 0; i < len(s); i++ {
		isSpace := s[i] == ' '
		if !isSpace && !inWord {
			n++
		}
		inWord = !isSpace
	}
	return n
}

// PlainCorpus builds a classic template-only corpus (explicit error reviews
// vs plain praise, no tricky or borderline items). The negation ablation
// trains on it to isolate the feature-level effect of the §3.2.2 filter.
func PlainCorpus(seed int64, n int) []textclass.Document {
	rng := rand.New(rand.NewSource(seed))
	feats := allFeatures()
	docs := make([]textclass.Document, 0, n)
	for i := 0; i < n/2; i++ {
		f := feats[rng.Intn(len(feats))]
		docs = append(docs, textclass.Document{
			Text:  errorReviewText(pickContext(f, rng), f, rng),
			Label: true,
		})
	}
	for i := 0; i < n-n/2; i++ {
		docs = append(docs, textclass.Document{
			Text:  nonErrorReviewText(feats, rng),
			Label: false,
		})
	}
	return docs
}

// GenerateSample generates one representative app corpus (K-9 Mail) — a
// cheap fixture for benchmarks and demos.
func GenerateSample(seed int64) *AppData {
	return GenerateApp(table6Apps[4], seed)
}

// GenerateSamplePair generates two distinct app corpora from one seed — the
// minimal multi-app fixture for fleet-serving harnesses (per-app metrics,
// SLO digests) that need more than one package name in play.
func GenerateSamplePair(seed int64) (*AppData, *AppData) {
	return GenerateApp(table6Apps[4], seed), GenerateApp(table6Apps[0], seed)
}

// Summary prints a one-line description of an app corpus, for tooling.
func (d *AppData) Summary() string {
	return fmt.Sprintf("%s (%s): %d releases, %d classes, %d reviews (%d error), %d bug reports, %d release notes",
		d.Info.Name, d.Info.Package, len(d.App.Releases),
		len(d.App.Latest().Classes), len(d.Reviews), len(d.ErrorReviews()),
		len(d.BugReports), len(d.ReleaseNotes))
}
