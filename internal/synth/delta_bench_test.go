package synth_test

import (
	"testing"

	"reviewsolver/internal/core"
	"reviewsolver/internal/synth"
)

// deltaBenchCopies pads the sample app to serve scale (~400 classes): real
// APKs carry hundreds of vendored/generated classes a version bump never
// touches, and that untouched bulk is exactly what the delta path gets to
// skip. The diff between the last two releases stays the size the real
// cadence produces (InflateApp freezes the padding across releases).
const deltaBenchCopies = 16

// BenchmarkDeltaRebuild measures the release-cadence rebuild: when a new
// version ships, the serving snapshot needs the latest release's §3.3
// static extraction. "full" is the from-scratch path every version bump
// previously paid; "delta" patches the predecessor's extraction through the
// structural diff (core.ExtractStaticDelta), which is property-tested to
// localize byte-identically. The ratio between the two is the headline
// number in bench/BENCH_DELTA.json.
func BenchmarkDeltaRebuild(b *testing.B) {
	app := synth.InflateApp(synth.GenerateSample(1).App, deltaBenchCopies)
	n := len(app.Releases)
	if n < 2 {
		b.Skip("sample app has a single release")
	}
	prevR, lastR := app.Releases[n-2], app.Releases[n-1]
	s := core.New()
	prev := s.StaticFor(prevR)

	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if s.ExtractStatic(lastR) == nil {
				b.Fatal("nil extraction")
			}
		}
	})
	b.Run("delta", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			info, st := s.ExtractStaticDelta(prev, lastR)
			if info == nil {
				b.Fatal("nil extraction")
			}
			if st.Full {
				b.Fatalf("delta fell back to full: %s", st.Reason)
			}
		}
	})
}
