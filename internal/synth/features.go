// Package synth deterministically generates the evaluation universe of the
// paper: the 18 open-source Android apps of Table 6 (plus the 10 additional
// apps of Table 14 and the 5 iOS apps of Table 16), their multi-version APK
// histories, user-review corpora with the context mix of Table 1 and the
// score mix of Table 3, bug reports (Fig. 5 ground truth) and release notes
// (Fig. 6 ground truth), and the labeled classifier datasets of §5.2.
//
// Everything is seeded: the same seed always yields byte-identical data, so
// every table in EXPERIMENTS.md regenerates exactly.
package synth

import "reviewsolver/internal/qa"

// feature is a unit of app functionality: the classes implementing it, the
// framework APIs it calls, its GUI surface, and the vocabulary users employ
// when it breaks.
type feature struct {
	// name identifies the feature ("send mail").
	name string
	// verb and object are the user-facing action words.
	verb, object string
	// activityBase and workerBase are the class base names
	// ("MessageCompose", "MessageSender").
	activityBase, workerBase string
	// apis are the framework APIs the worker calls.
	apis []qa.APIRef
	// widgetIDs are the layout widget ids of the feature's activity.
	widgetIDs []string
	// visibleTexts are shown in the feature's activity.
	visibleTexts []string
	// errorMessage is raised (via Toast/dialog) when the feature fails.
	errorMessage string
	// uri is an optional content-provider URI the worker queries.
	uri string
	// intentAction is an optional intent the worker dispatches.
	intentAction string
	// exception is an optional exception type the worker throws.
	exception string
	// generalTask is the Stack Overflow task phrase matching the feature
	// ("download file"), used by General Task reviews.
	generalTask string
}

// featureLibrary is the pool of features apps are assembled from, grouped
// by the domains of the evaluation apps.
var featureLibrary = map[string][]feature{
	"mail": {
		{
			name: "send mail", verb: "send", object: "email",
			activityBase: "MessageCompose", workerBase: "MessageSender",
			apis: []qa.APIRef{
				{Class: "java.net.Socket", Method: "connect"},
				{Class: "java.net.Socket", Method: "getOutputStream"},
			},
			widgetIDs:    []string{"send_btn", "subject_edit", "quoted_text_edit"},
			visibleTexts: []string{"Send", "Subject", "Compose"},
			errorMessage: "Failed to send some messages",
			exception:    "SocketException",
			generalTask:  "send email",
		},
		{
			name: "fetch mail", verb: "fetch", object: "mail",
			activityBase: "MessageList", workerBase: "MailFetcher",
			apis: []qa.APIRef{
				{Class: "java.net.URLConnection", Method: "connect"},
				{Class: "java.net.Socket", Method: "setSoTimeout"},
			},
			widgetIDs:    []string{"inbox_list", "refresh_btn"},
			visibleTexts: []string{"Inbox", "Refresh"},
			errorMessage: "Cannot fetch mail from server",
			exception:    "SocketException",
			generalTask:  "sync data",
		},
		{
			name: "verify certificate", verb: "verify", object: "certificate",
			activityBase: "ClientCertificateSpinner", workerBase: "CertificateChecker",
			apis: []qa.APIRef{
				{Class: "android.security.KeyChain", Method: "choosePrivateKeyAlias"},
				{Class: "javax.net.ssl.SSLSocket", Method: "startHandshake"},
			},
			widgetIDs:    []string{"certificate_spinner"},
			visibleTexts: []string{"Certificate"},
			errorMessage: "Random certificate errors",
			generalTask:  "trust certificate",
		},
		{
			name: "reply mail", verb: "reply", object: "message",
			activityBase: "EditIdentity", workerBase: "ReplyBuilder",
			apis: []qa.APIRef{
				{Class: "android.widget.TextView", Method: "setText"},
			},
			widgetIDs:    []string{"reply_to", "reply_btn", "signature_edit"},
			visibleTexts: []string{"Reply to address", "Signature"},
			errorMessage: "Could not build reply",
		},
	},
	"messaging": {
		{
			name: "send sms", verb: "send", object: "sms",
			activityBase: "ConversationActivity", workerBase: "SmsSendJob",
			apis: []qa.APIRef{
				{Class: "android.telephony.SmsManager", Method: "sendTextMessage"},
				{Class: "android.telephony.SmsManager", Method: "divideMessage"},
			},
			widgetIDs:    []string{"send_btn", "compose_text"},
			visibleTexts: []string{"Send message"},
			errorMessage: "Message could not be sent",
			generalTask:  "send sms",
		},
		{
			name: "find contact", verb: "find", object: "contact",
			activityBase: "ContactSelectionActivity", workerBase: "ContactsDatabase",
			apis: []qa.APIRef{
				{Class: "android.content.ContentResolver", Method: "query"},
			},
			uri:          "content://contacts",
			widgetIDs:    []string{"contact_search", "contact_list"},
			visibleTexts: []string{"Search contacts"},
			errorMessage: "Could not load contacts",
			generalTask:  "read contacts",
		},
		{
			name: "backup sms", verb: "backup", object: "sms",
			activityBase: "BackupActivity", workerBase: "SmsBackupService",
			apis: []qa.APIRef{
				{Class: "android.content.ContentResolver", Method: "query"},
				{Class: "android.app.backup.BackupManager", Method: "dataChanged"},
			},
			uri:          "content://sms",
			widgetIDs:    []string{"backup_btn", "auto_backup_cb"},
			visibleTexts: []string{"Backup now", "Auto backup"},
			errorMessage: "Backup failed",
			generalTask:  "backup sms",
		},
		{
			name: "encrypt message", verb: "encrypt", object: "message",
			activityBase: "SecureComposeActivity", workerBase: "MessageCipher",
			apis: []qa.APIRef{
				{Class: "android.security.KeyChain", Method: "getCertificateChain"},
			},
			widgetIDs:    []string{"lock_icon", "encrypt_toggle"},
			visibleTexts: []string{"Encrypted"},
			errorMessage: "Encryption key missing",
			exception:    "KeyChainException",
		},
	},
	"social": {
		{
			name: "upload photo", verb: "upload", object: "photos",
			activityBase: "MediaPickerActivity", workerBase: "MediaUploader",
			apis: []qa.APIRef{
				{Class: "java.net.URL", Method: "openConnection"},
				{Class: "java.net.HttpURLConnection", Method: "getResponseCode"},
			},
			intentAction: "android.media.action.IMAGE_CAPTURE",
			widgetIDs:    []string{"upload_btn", "gallery_grid"},
			visibleTexts: []string{"Upload", "Gallery"},
			errorMessage: "uploading photos error",
			generalTask:  "upload photo",
		},
		{
			name: "load timeline", verb: "load", object: "timeline",
			activityBase: "TimelineActivity", workerBase: "TimelineLoader",
			apis: []qa.APIRef{
				{Class: "java.net.HttpURLConnection", Method: "getInputStream"},
				{Class: "org.json.JSONObject", Method: "getString"},
			},
			widgetIDs:    []string{"timeline_list", "refresh_layout"},
			visibleTexts: []string{"Timeline", "Home"},
			errorMessage: "Could not refresh timeline",
			generalTask:  "parse json",
		},
		{
			name: "post comment", verb: "post", object: "comment",
			activityBase: "ComposeActivity", workerBase: "StatusPoster",
			apis: []qa.APIRef{
				{Class: "java.net.URL", Method: "openConnection"},
			},
			widgetIDs:    []string{"post_btn", "comment_edit"},
			visibleTexts: []string{"Post", "What's happening?"},
			errorMessage: "Post failed, try again",
		},
		{
			name: "open link", verb: "open", object: "links",
			activityBase: "BrowserActivity", workerBase: "LinkOpener",
			apis: []qa.APIRef{
				{Class: "android.webkit.WebView", Method: "loadUrl"},
				{Class: "java.net.HttpURLConnection", Method: "getResponseCode"},
			},
			widgetIDs:    []string{"web_view", "address_bar"},
			visibleTexts: []string{"Open in browser"},
			errorMessage: "404 error",
			generalTask:  "404 error",
		},
	},
	"reader": {
		{
			name: "download book", verb: "download", object: "file",
			activityBase: "CatalogActivity", workerBase: "BookDownloader",
			apis: []qa.APIRef{
				{Class: "android.app.DownloadManager", Method: "enqueue"},
				{Class: "java.io.FileOutputStream", Method: "write"},
			},
			widgetIDs:    []string{"download_btn", "catalog_list"},
			visibleTexts: []string{"Download", "Catalog"},
			errorMessage: "Download could not complete",
			generalTask:  "download file",
		},
		{
			name: "read article", verb: "read", object: "articles",
			activityBase: "ReaderActivity", workerBase: "PageRenderer",
			apis: []qa.APIRef{
				{Class: "android.widget.TextView", Method: "setText"},
				{Class: "android.graphics.BitmapFactory", Method: "decodeFile"},
			},
			widgetIDs:    []string{"page_view", "font_size_sb"},
			visibleTexts: []string{"Reading", "Font size"},
			errorMessage: "Cannot render page",
		},
		{
			name: "sync library", verb: "sync", object: "library",
			activityBase: "LibraryActivity", workerBase: "LibrarySyncer",
			apis: []qa.APIRef{
				{Class: "java.net.URLConnection", Method: "connect"},
				{Class: "android.database.sqlite.SQLiteDatabase", Method: "insert"},
			},
			widgetIDs:    []string{"library_grid", "sync_btn"},
			visibleTexts: []string{"Library", "Sync"},
			errorMessage: "Sync failed",
			generalTask:  "sync data",
		},
	},
	"media": {
		{
			name: "play episode", verb: "play", object: "episode",
			activityBase: "PlayerActivity", workerBase: "PlaybackService",
			apis: []qa.APIRef{
				{Class: "android.media.MediaPlayer", Method: "setDataSource"},
				{Class: "android.media.MediaPlayer", Method: "prepare"},
				{Class: "android.media.MediaPlayer", Method: "start"},
			},
			widgetIDs:    []string{"play_btn", "seek_bar", "volume_sb"},
			visibleTexts: []string{"Play", "Now playing"},
			errorMessage: "Playback error",
			exception:    "IllegalStateException",
			generalTask:  "play audio",
		},
		{
			name: "take picture", verb: "take", object: "pictures",
			activityBase: "CameraActivity", workerBase: "PictureSaver",
			apis: []qa.APIRef{
				{Class: "android.hardware.Camera", Method: "open"},
				{Class: "android.hardware.Camera", Method: "takePicture"},
				{Class: "android.graphics.Matrix", Method: "postRotate"},
			},
			intentAction: "android.media.action.IMAGE_CAPTURE",
			widgetIDs:    []string{"shutter_btn", "flash_toggle"},
			visibleTexts: []string{"Capture"},
			errorMessage: "out of memory",
			generalTask:  "take picture",
		},
		{
			name: "save picture", verb: "save", object: "photos",
			activityBase: "GalleryActivity", workerBase: "MediaStore",
			apis: []qa.APIRef{
				{Class: "android.os.Environment", Method: "getExternalStorageDirectory"},
				{Class: "java.io.FileOutputStream", Method: "write"},
			},
			widgetIDs:    []string{"save_btn", "gallery_grid"},
			visibleTexts: []string{"Save to SD card"},
			errorMessage: "Could not save to sd card",
			generalTask:  "save file",
		},
		{
			name: "stream audio", verb: "stream", object: "music",
			activityBase: "StreamActivity", workerBase: "StreamBuffer",
			apis: []qa.APIRef{
				{Class: "java.net.Socket", Method: "getInputStream"},
				{Class: "android.media.MediaPlayer", Method: "start"},
			},
			widgetIDs:    []string{"stream_list"},
			visibleTexts: []string{"Stations"},
			errorMessage: "Buffering failed",
			exception:    "SocketException",
		},
	},
	"maps": {
		{
			name: "locate position", verb: "find", object: "location",
			activityBase: "MapActivity", workerBase: "LocationTracker",
			apis: []qa.APIRef{
				{Class: "android.location.LocationManager", Method: "requestLocationUpdates"},
				{Class: "android.location.LocationManager", Method: "getLastKnownLocation"},
			},
			widgetIDs:    []string{"map_view", "locate_btn"},
			visibleTexts: []string{"My location"},
			errorMessage: "GPS signal lost",
			exception:    "SecurityException",
			generalTask:  "get location",
		},
		{
			name: "log visit", verb: "log", object: "visit",
			activityBase: "LogVisitActivity", workerBase: "VisitLogger",
			apis: []qa.APIRef{
				{Class: "android.database.sqlite.SQLiteDatabase", Method: "insert"},
				{Class: "java.net.URLConnection", Method: "connect"},
			},
			widgetIDs:    []string{"log_btn", "visit_note_edit"},
			visibleTexts: []string{"Log visit"},
			errorMessage: "can't load data required to log visit",
		},
		{
			name: "search route", verb: "search", object: "route",
			activityBase: "RouteSearchActivity", workerBase: "RouteFinder",
			apis: []qa.APIRef{
				{Class: "java.net.HttpURLConnection", Method: "getInputStream"},
				{Class: "org.json.JSONObject", Method: "getString"},
			},
			widgetIDs:    []string{"route_search", "arrivals_list"},
			visibleTexts: []string{"Find routes", "Arrivals"},
			errorMessage: "No arrival data",
			generalTask:  "parse json",
		},
	},
	"games": {
		{
			name: "load puzzle", verb: "load", object: "puzzle",
			activityBase: "PuzzleActivity", workerBase: "PuzzleLoader",
			apis: []qa.APIRef{
				{Class: "java.io.FileInputStream", Method: "read"},
				{Class: "java.util.zip.ZipInputStream", Method: "getNextEntry"},
			},
			widgetIDs:    []string{"board_view", "clue_list"},
			visibleTexts: []string{"Across", "Down"},
			errorMessage: "Puzzle file corrupt",
			exception:    "ZipException",
			generalTask:  "unzip file",
		},
		{
			name: "save game", verb: "save", object: "game",
			activityBase: "GameActivity", workerBase: "GameSaver",
			apis: []qa.APIRef{
				{Class: "android.content.SharedPreferences$Editor", Method: "putString"},
			},
			widgetIDs:    []string{"undo_btn", "new_game_btn"},
			visibleTexts: []string{"New game", "Undo"},
			errorMessage: "Could not save game state",
		},
		{
			name: "show stats", verb: "show", object: "stats",
			activityBase: "StatsActivity", workerBase: "StatsCalculator",
			apis: []qa.APIRef{
				{Class: "android.database.sqlite.SQLiteDatabase", Method: "query"},
			},
			widgetIDs:    []string{"stats_list", "stats_chart"},
			visibleTexts: []string{"Statistics", "Streak"},
			errorMessage: "stats page error",
		},
	},
	"tools": {
		{
			name: "download torrent", verb: "download", object: "file",
			activityBase: "TransfersActivity", workerBase: "TorrentDownloader",
			apis: []qa.APIRef{
				{Class: "java.net.Socket", Method: "connect"},
				{Class: "java.io.FileOutputStream", Method: "write"},
			},
			widgetIDs:    []string{"transfers_list", "pause_btn"},
			visibleTexts: []string{"Transfers"},
			errorMessage: "Too many errors that prevent file downloads",
			exception:    "SocketException",
			generalTask:  "download file",
		},
		{
			name: "unlock screen", verb: "unlock", object: "screen",
			activityBase: "LockscreenActivity", workerBase: "UnlockHandler",
			apis: []qa.APIRef{
				{Class: "android.os.PowerManager$WakeLock", Method: "acquire"},
			},
			widgetIDs:    []string{"unlock_area", "pin_pad"},
			visibleTexts: []string{"Swipe to unlock"},
			errorMessage: "Unlock gesture not recognized",
		},
		{
			name: "review flashcard", verb: "review", object: "cards",
			activityBase: "ReviewerActivity", workerBase: "DeckScheduler",
			apis: []qa.APIRef{
				{Class: "android.database.sqlite.SQLiteDatabase", Method: "query"},
				{Class: "android.database.sqlite.SQLiteDatabase", Method: "execSQL"},
			},
			widgetIDs:    []string{"card_view", "again_btn", "good_btn"},
			visibleTexts: []string{"Show answer", "Again", "Good"},
			errorMessage: "Deck database error",
			exception:    "SQLiteException",
		},
		{
			name: "notify display", verb: "show", object: "notifications",
			activityBase: "NotificationsActivity", workerBase: "NotificationPresenter",
			apis: []qa.APIRef{
				{Class: "android.app.NotificationManager", Method: "notify"},
			},
			widgetIDs:    []string{"notification_list", "priority_sp"},
			visibleTexts: []string{"Active notifications"},
			errorMessage: "Notification could not be shown",
		},
	},
}

// commonFeatures are included in every app: launch and account login.
var commonFeatures = []feature{
	{
		name: "open app", verb: "open", object: "app",
		activityBase: "MainActivity", workerBase: "StartupLoader",
		apis: []qa.APIRef{
			{Class: "android.content.SharedPreferences", Method: "getString"},
		},
		widgetIDs:    []string{"main_toolbar", "nav_drawer"},
		visibleTexts: []string{"Welcome"},
		errorMessage: "Initialization failed",
	},
	{
		name: "login account", verb: "login", object: "account",
		activityBase: "LoginActivity", workerBase: "AccountAuthenticator",
		apis: []qa.APIRef{
			{Class: "android.accounts.AccountManager", Method: "getAuthToken"},
			{Class: "java.net.HttpURLConnection", Method: "getResponseCode"},
		},
		widgetIDs:    []string{"username_edit", "password_edit", "show_password", "login_btn"},
		visibleTexts: []string{"Sign in", "Password", "Username"},
		errorMessage: "Login failed, check credentials",
		generalTask:  "login user",
	},
}
