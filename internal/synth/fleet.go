package synth

import (
	"math/rand"
	"sort"
	"strings"
)

// fleetFillers are the app-local decoration words of a fleet corpus: brand
// and variant tokens that real apps splice into otherwise framework-shaped
// method names ("sendEmailPro", "cloudFetchMail"). They are deliberately
// outside the embedding lexicon, so they perturb a phrase's vector away
// from its base without touching the shared anchor components.
var fleetFillers = []string{
	"pro", "lite", "plus", "beta", "cloud", "mobile", "ultra", "mini",
	"turbo", "prime", "nova", "pixel", "swift", "zen", "flux", "echo",
	"orbit", "quark", "vega", "nimbus", "aster", "lumen", "corevx", "zephyr",
}

// fleetDecorPerApp is the number of app-specific decorated phrases each
// fleet app contributes on top of the shared framework-derived ones.
const fleetDecorPerApp = 8

// FleetPhrases generates the combined method-phrase corpus of a synthetic
// fleet of `apps` resident apps, for fleet-scale kernel benchmarks (the
// quantized scan tier's target workload). The shape mirrors what the synth
// generator actually builds (see methodNameFor): every app derives its
// method names from the shared feature vocabulary — the verb/object pairs,
// feature names, and general-task phrases of the feature library — so those
// phrases repeat *identically* across the fleet, exactly like framework SDK
// methods across real apps. On top, each app contributes a handful of
// app-specific methods: shared base phrases decorated with brand filler
// words. The output is a flat list of word slices in app-major order; the
// same seed and app count always produce the identical corpus.
func FleetPhrases(seed int64, apps int) [][]string {
	// The shared base vocabulary, deduplicated and in deterministic order
	// (featureLibrary is a map, so sort its domains first).
	domains := make([]string, 0, len(featureLibrary))
	for d := range featureLibrary {
		domains = append(domains, d)
	}
	sort.Strings(domains)
	var base [][]string
	seen := make(map[string]struct{})
	add := func(words []string) {
		if len(words) == 0 {
			return
		}
		key := strings.Join(words, " ")
		if _, dup := seen[key]; dup {
			return
		}
		seen[key] = struct{}{}
		base = append(base, words)
	}
	for _, d := range domains {
		for _, f := range featureLibrary[d] {
			add([]string{f.verb, f.object})
			add(strings.Fields(f.name))
			add(strings.Fields(f.generalTask))
		}
	}

	rng := rand.New(rand.NewSource(seed))
	out := make([][]string, 0, apps*(len(base)+fleetDecorPerApp))
	for a := 0; a < apps; a++ {
		out = append(out, base...)
		// App-specific methods: a few decorated variants of shared bases,
		// each app with its own filler palette and base picks.
		f1 := fleetFillers[rng.Intn(len(fleetFillers))]
		f2 := fleetFillers[rng.Intn(len(fleetFillers))]
		for d := 0; d < fleetDecorPerApp; d++ {
			b := base[rng.Intn(len(base))]
			switch rng.Intn(3) {
			case 0:
				out = append(out, append(append([]string{}, b...), f1))
			case 1:
				out = append(out, append([]string{f2}, b...))
			default:
				out = append(out, append(append([]string{f1}, b...), f2))
			}
		}
	}
	return out
}
