package synth

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"reviewsolver/internal/apk"
	"reviewsolver/internal/ctxinfo"
)

// Fault is a planted defect: a feature of the app that misbehaves. Its
// Classes are the ground-truth problematic code files.
type Fault struct {
	ID      int
	Feature string
	// Classes are the fully qualified ground-truth classes (activity +
	// worker of the broken feature).
	Classes []string
	// FixedIn is the release index whose code change fixes the fault
	// (-1 when never fixed in the generated history).
	FixedIn int
}

// Review is one generated user review with its generator-side truth.
type Review struct {
	ID          int
	Text        string
	Score       int
	PublishedAt time.Time
	// IsError is the generator truth: does the review describe a function
	// error?
	IsError bool
	// FaultID links an error review to its fault (-1 for error reviews
	// without context and all non-error reviews).
	FaultID int
	// Context is the context-information style the review was written in.
	Context ctxinfo.Type
}

// BugReport is an issue-tracker entry for a fault (Fig. 5 ground truth).
type BugReport struct {
	ID      int
	FaultID int
	Title   string
	Body    string
	// FixedClasses are the code files the developers changed to fix it.
	FixedClasses []string
}

// ReleaseNote documents one release's fixes (Fig. 6 ground truth).
type ReleaseNote struct {
	Version string
	Lines   []string
	// FaultIDs are the faults this release fixes.
	FaultIDs []int
	// ChangedClasses are the files changed relative to the previous
	// release.
	ChangedClasses []string
}

// AppData bundles everything generated for one app.
type AppData struct {
	Info         AppInfo
	App          *apk.App
	Faults       []Fault
	Reviews      []Review
	BugReports   []BugReport
	ReleaseNotes []ReleaseNote
}

// FaultByID returns the fault with the given id.
func (d *AppData) FaultByID(id int) (Fault, bool) {
	for _, f := range d.Faults {
		if f.ID == id {
			return f, true
		}
	}
	return Fault{}, false
}

// ErrorReviews returns the reviews whose generator truth is "function
// error".
func (d *AppData) ErrorReviews() []Review {
	var out []Review
	for _, r := range d.Reviews {
		if r.IsError {
			out = append(out, r)
		}
	}
	return out
}

// epoch is the start of the generated release timeline.
var epoch = time.Date(2017, 1, 15, 0, 0, 0, 0, time.UTC)

// GenerateApp builds one app with its reviews and ground-truth documents.
func GenerateApp(spec appSpec, seed int64) *AppData {
	rng := rand.New(rand.NewSource(seed))
	feats := selectFeatures(spec, rng)

	data := &AppData{Info: specInfos([]appSpec{spec})[0]}

	// Faults: one per feature (beyond the common pair every app shares,
	// which also can break).
	for i, f := range feats {
		fault := Fault{
			ID:      i,
			Feature: f.name,
			Classes: []string{
				spec.pkg + "." + f.activityBase,
				spec.pkg + "." + f.workerBase,
			},
			FixedIn: -1,
		}
		if spec.versions > 1 {
			fault.FixedIn = 1 + i%(spec.versions-1)
		}
		data.Faults = append(data.Faults, fault)
	}

	data.App = buildApp(spec, feats, data.Faults)
	data.Reviews = generateReviews(spec, feats, data.Faults, data.App, rng)

	if spec.hasBugReports {
		data.BugReports = generateBugReports(feats, data.Faults)
	}
	if spec.hasRelNotes {
		data.ReleaseNotes = generateReleaseNotes(data.App, feats, data.Faults)
	}
	return data
}

// selectFeatures picks the app's feature set: the common pair plus every
// domain feature, plus one or two borrowed from other domains for variety.
func selectFeatures(spec appSpec, rng *rand.Rand) []feature {
	feats := append([]feature(nil), commonFeatures...)
	feats = append(feats, featureLibrary[spec.domain]...)
	domains := make([]string, 0, len(featureLibrary))
	for d := range featureLibrary {
		domains = append(domains, d)
	}
	sort.Strings(domains)
	for i := 0; i < 2; i++ {
		d := domains[rng.Intn(len(domains))]
		if d == spec.domain {
			continue
		}
		pool := featureLibrary[d]
		cand := pool[rng.Intn(len(pool))]
		dup := false
		for _, f := range feats {
			if f.name == cand.name {
				dup = true
			}
		}
		if !dup {
			feats = append(feats, cand)
		}
	}
	return feats
}

// buildApp assembles the APK release history for the feature set.
func buildApp(spec appSpec, feats []feature, faults []Fault) *apk.App {
	b := apk.NewBuilder(spec.pkg, spec.name)
	released := epoch
	b.Release("1.0", 1, released)
	b.Permission("android.permission.INTERNET")

	for i, f := range feats {
		addFeature(b, spec.pkg, f, i == 0)
	}
	// Filler utility classes shared across features.
	b.Class(spec.pkg+".util.Preferences").
		Method("loadSettings",
			apk.Invoke("v", "android.content.SharedPreferences", "getString")).
		Method("saveSettings",
			apk.Invoke("", "android.content.SharedPreferences$Editor", "putString"))
	b.Class(spec.pkg+".util.Logger").
		Method("logEvent", apk.ConstString("tag", spec.name), apk.Return())

	for v := 1; v < spec.versions; v++ {
		released = released.AddDate(0, 2, (v*7)%28)
		b.CopyRelease(fmt.Sprintf("1.%d", v), v+1, released)
		// Apply the fixes scheduled for this release: touch the worker
		// class of each fixed fault.
		for _, fault := range faults {
			if fault.FixedIn != v {
				continue
			}
			r := b.CurrentRelease()
			worker := fault.Classes[len(fault.Classes)-1]
			if c, ok := r.FindClass(worker); ok && len(c.Methods) > 0 {
				c.Methods[0].Statements = append(c.Methods[0].Statements,
					apk.ConstString("fixmarker", "fixed in 1."+fmt.Sprint(v)),
					apk.Return())
			}
		}
		// Organic growth: one new helper class per release.
		b.Class(fmt.Sprintf("%s.util.Helper%d", spec.pkg, v)).
			Method("assist", apk.Return())
	}
	return b.Build()
}

// addFeature emits the activity + worker classes, layout, and resources of
// one feature into the current release.
func addFeature(b *apk.Builder, pkg string, f feature, launcher bool) {
	activity := pkg + "." + f.activityBase
	worker := pkg + "." + f.workerBase
	layoutID := strings.ToLower(f.activityBase)

	if launcher {
		b.LauncherActivity(activity, layoutID)
	} else {
		b.Activity(activity, layoutID)
	}

	// Layout with the feature's widgets.
	children := make([]apk.Widget, 0, len(f.widgetIDs))
	for i, id := range f.widgetIDs {
		w := apk.Widget{Type: widgetTypeFor(id), ID: id}
		if i < len(f.visibleTexts) {
			resID := layoutID + "_text_" + fmt.Sprint(i)
			b.StringRes(resID, f.visibleTexts[i])
			w.Text = "@string/" + resID
		}
		children = append(children, w)
	}
	b.Layout(layoutID, apk.Widget{Type: "LinearLayout", Children: children})

	// Activity: lifecycle + click handler delegating to the worker.
	workerMethod := methodNameFor(f)
	b.Class(activity).
		Method("onCreate",
			apk.Invoke("", "android.app.Activity", "setTitle"),
			apk.Invoke("", pkg+".util.Preferences", "loadSettings")).
		Method("onClick",
			apk.Invoke("", worker, workerMethod)).
		Method("onResume", apk.Return())

	// Worker: the feature implementation.
	stmts := make([]apk.Statement, 0, 12)
	if f.uri != "" {
		stmts = append(stmts,
			apk.ConstString("uri", f.uri),
			apk.Invoke("cursor", "android.content.ContentResolver", "query", "uri"))
	}
	if f.intentAction != "" {
		stmts = append(stmts,
			apk.ConstString("action", f.intentAction),
			apk.NewObj("intent", "android.content.Intent"),
			apk.Invoke("", "android.app.Activity", "startActivityForResult", "action", "intent"))
	}
	for _, api := range f.apis {
		stmts = append(stmts, apk.Invoke("r", api.Class, api.Method))
	}
	if f.errorMessage != "" {
		stmts = append(stmts,
			apk.ConstString("err", f.errorMessage),
			apk.Invoke("", "android.widget.Toast", "makeText", "err"))
	}
	if f.exception != "" {
		stmts = append(stmts, apk.Catch(f.exception))
	}
	stmts = append(stmts, apk.Return())

	b.Class(worker).
		Method(workerMethod, stmts...).
		Method("cancel"+upperFirst(f.object), apk.Return())
}

// methodNameFor converts "send"+"email" into "sendEmail".
func methodNameFor(f feature) string {
	obj := strings.ReplaceAll(f.object, " ", "")
	return f.verb + upperFirst(obj)
}

func upperFirst(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

func widgetTypeFor(id string) string {
	switch {
	case strings.HasSuffix(id, "_btn"):
		return "Button"
	case strings.HasSuffix(id, "_edit") || strings.HasSuffix(id, "_search"):
		return "EditText"
	case strings.HasSuffix(id, "_list") || strings.HasSuffix(id, "_grid"):
		return "ListView"
	case strings.HasSuffix(id, "_cb") || strings.HasSuffix(id, "_toggle"):
		return "CheckBox"
	case strings.HasSuffix(id, "_sb"):
		return "SeekBar"
	case strings.HasSuffix(id, "_sp"):
		return "Spinner"
	case strings.HasSuffix(id, "_view"):
		return "TextView"
	default:
		return "TextView"
	}
}
