package synth

import (
	"fmt"

	"reviewsolver/internal/apk"
)

// InflateApp pads an app to serve scale: alongside every release's real
// classes ride `copies` decorated clones of the first release's class set.
// The padding mirrors what FleetPhrases argues about real APKs — hundreds
// of near-identical framework-shaped classes (vendored libraries, generated
// adapters) that a version bump never touches. The clones are built once
// from the first release and shared by every release, so cross-release
// diffs stay exactly the size the real cadence produces, and their
// invocation edges are rewritten into the clone's own namespace (a closed
// world), so they never couple to the live diff through call-graph hazards.
//
// Manifest, layouts, and string resources are shared untouched: padding
// adds method-phrase and inventory rows, not activities. The same input
// always yields the identical output.
func InflateApp(app *apk.App, copies int) *apk.App {
	if copies <= 0 || len(app.Releases) == 0 {
		return app
	}
	base := app.Releases[0]
	appClasses := make(map[string]struct{}, len(base.Classes))
	for _, c := range base.Classes {
		appClasses[c.Name] = struct{}{}
	}
	padding := make([]*apk.Class, 0, copies*len(base.Classes))
	for ci := 1; ci <= copies; ci++ {
		suffix := fmt.Sprintf("Pad%d", ci)
		for _, c := range base.Classes {
			clone := &apk.Class{Name: c.Name + suffix, Super: c.Super}
			clone.Methods = make([]*apk.Method, 0, len(c.Methods))
			for _, m := range c.Methods {
				nm := &apk.Method{
					Name:       m.Name,
					Class:      clone.Name,
					Statements: append([]apk.Statement(nil), m.Statements...),
				}
				for si := range nm.Statements {
					st := &nm.Statements[si]
					if st.Op != apk.OpInvoke {
						continue
					}
					if _, isApp := appClasses[st.InvokeClass]; isApp {
						st.InvokeClass += suffix
					}
				}
				clone.Methods = append(clone.Methods, nm)
			}
			padding = append(padding, clone)
		}
	}
	out := &apk.App{Package: app.Package, Name: app.Name}
	out.Releases = make([]*apk.Release, len(app.Releases))
	for i, r := range app.Releases {
		nr := &apk.Release{ // manifest, layouts, and string resources shared
			Version:     r.Version,
			VersionCode: r.VersionCode,
			ReleasedAt:  r.ReleasedAt,
			Manifest:    r.Manifest,
			Layouts:     r.Layouts,
			StringRes:   r.StringRes,
		}
		nr.Classes = make([]*apk.Class, 0, len(r.Classes)+len(padding))
		nr.Classes = append(nr.Classes, r.Classes...)
		nr.Classes = append(nr.Classes, padding...)
		out.Releases[i] = nr
	}
	return out
}
