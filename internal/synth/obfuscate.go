package synth

import (
	"fmt"

	"reviewsolver/internal/apk"
)

// Obfuscate returns a deep copy of a release with every method name
// replaced by a meaningless short identifier, the way ProGuard strips an
// APK (§3.3.2's obfuscation experiment). Class names, layouts, and string
// resources are kept — ProGuard's default keeps entry-point classes, and
// the paper's Code2vec experiment targets method names specifically.
func Obfuscate(r *apk.Release) *apk.Release {
	out := &apk.Release{
		Version:     r.Version + "-obf",
		VersionCode: r.VersionCode,
		ReleasedAt:  r.ReleasedAt,
		Manifest:    r.Manifest,
		Layouts:     r.Layouts,
		StringRes:   r.StringRes,
	}
	n := 0
	for _, c := range r.Classes {
		clone := &apk.Class{Name: c.Name, Super: c.Super}
		for _, m := range c.Methods {
			name := obfName(n)
			n++
			// Lifecycle entry points keep their names (the framework calls
			// them by name, so ProGuard cannot rename them).
			if m.Name == "onCreate" || m.Name == "onStart" || m.Name == "onResume" ||
				m.Name == "onClick" {
				name = m.Name
			}
			clone.Methods = append(clone.Methods, &apk.Method{
				Name:       name,
				Class:      c.Name,
				Statements: append([]apk.Statement(nil), m.Statements...),
			})
		}
		out.Classes = append(out.Classes, clone)
	}
	return out
}

// obfName yields "a", "b", …, "z", "aa", "ab", … like ProGuard.
func obfName(n int) string {
	name := ""
	for {
		name = fmt.Sprintf("%c%s", 'a'+n%26, name)
		n = n/26 - 1
		if n < 0 {
			break
		}
	}
	return name
}
