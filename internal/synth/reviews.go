package synth

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"reviewsolver/internal/apk"
	"reviewsolver/internal/ctxinfo"
	"reviewsolver/internal/textproc"
)

// errorFraction is the share of generated reviews that describe function
// errors (the remainder are praise, feature requests, and chatter).
const errorFraction = 0.35

// generateReviews produces the app's review corpus: error reviews written
// in the context styles of Table 1 (referencing planted faults) and
// non-error reviews, with the score skew of Table 3.
func generateReviews(spec appSpec, feats []feature, faults []Fault, app *apk.App, rng *rand.Rand) []Review {
	reviews := make([]Review, 0, spec.reviews)
	start := epoch.AddDate(0, 0, 7)
	end := app.Latest().ReleasedAt.AddDate(0, 2, 0)
	span := end.Sub(start)

	for i := 0; i < spec.reviews; i++ {
		published := start.Add(time.Duration(rng.Int63n(int64(span))))
		r := Review{ID: i, PublishedAt: published, FaultID: -1}
		if rng.Float64() < errorFraction {
			r.IsError = true
			fi := rng.Intn(len(faults))
			fault := faults[fi]
			feat := feats[fi]
			r.Context = pickContext(feat, rng)
			if r.Context != ctxinfo.Other {
				r.FaultID = fault.ID
				// A fifth of the users who hit a specific fault still
				// describe it without any usable context ("it just
				// crashes") — their ground-truth mapping exists (via the
				// bug report) but no system can recover it, which is why
				// the paper's #Total Map dwarfs every system's #Map.
				if rng.Float64() < 0.20 {
					r.Context = ctxinfo.Other
				}
			}
			r.Text = errorReviewText(r.Context, feat, rng)
			r.Score = errorScore(rng)
		} else {
			r.Context = ctxinfo.Other
			r.Text = nonErrorReviewText(feats, rng)
			r.Score = praiseScore(rng)
		}
		reviews = append(reviews, r)
	}
	return reviews
}

// pickContext samples a Table 1 context type compatible with the feature.
func pickContext(f feature, rng *rand.Rand) ctxinfo.Type {
	// Build the compatible set with Table 1 weights.
	type wt struct {
		t ctxinfo.Type
		w float64
	}
	cands := []wt{
		{ctxinfo.AppSpecificTask, ctxinfo.AppSpecificTask.Table1Percent()},
		{ctxinfo.UpdatingApp, ctxinfo.UpdatingApp.Table1Percent()},
		{ctxinfo.Other, ctxinfo.Other.Table1Percent()},
	}
	if len(f.widgetIDs) > 0 {
		cands = append(cands, wt{ctxinfo.GUI, ctxinfo.GUI.Table1Percent()})
	}
	if f.errorMessage != "" {
		cands = append(cands, wt{ctxinfo.ErrorMessage, ctxinfo.ErrorMessage.Table1Percent()})
	}
	if f.name == "open app" {
		cands = append(cands, wt{ctxinfo.OpeningApp, 40})
	}
	if f.name == "login account" {
		cands = append(cands, wt{ctxinfo.RegisteringAccount, 40})
	}
	if len(f.apis) > 0 || f.uri != "" || f.intentAction != "" {
		cands = append(cands, wt{ctxinfo.APIURIIntent, ctxinfo.APIURIIntent.Table1Percent()})
	}
	if f.generalTask != "" {
		cands = append(cands, wt{ctxinfo.GeneralTask, ctxinfo.GeneralTask.Table1Percent()})
	}
	if f.exception != "" {
		cands = append(cands, wt{ctxinfo.Exception, 3})
	}
	total := 0.0
	for _, c := range cands {
		total += c.w
	}
	x := rng.Float64() * total
	for _, c := range cands {
		x -= c.w
		if x <= 0 {
			return c.t
		}
	}
	return ctxinfo.Other
}

// verbSynonyms and objectSynonyms are the paraphrases users substitute for
// the app's own vocabulary ("fetch mail" → "get email"). Half of the
// generated error reviews use them, which is exactly the gap semantic
// matching closes and exact word matching cannot (§2.3 Example 1, §4.1.1).
var verbSynonyms = map[string][]string{
	"send": {"deliver", "submit"}, "fetch": {"get", "retrieve"},
	"upload": {"post", "publish"}, "download": {"get", "pull"},
	"save": {"store", "keep"}, "find": {"search", "locate"},
	"play": {"stream", "listen to"}, "open": {"launch", "start"},
	"load": {"open", "render"}, "sync": {"refresh", "synchronize"},
	"take": {"capture", "snap"}, "show": {"display", "view"},
	"verify": {"check", "validate"}, "backup": {"save", "export"},
	"record": {"capture", "tape"}, "post": {"publish", "share"},
	"search": {"find", "look up"}, "read": {"view", "browse"},
	"stream": {"play", "listen to"}, "log": {"record", "note"},
	"review": {"study", "practice"}, "unlock": {"open", "wake"},
	"encrypt": {"secure", "protect"}, "reply": {"respond", "answer"},
	"locate": {"find", "track"}, "delete": {"remove", "erase"},
	"login": {"sign in", "log in"},
}

var objectSynonyms = map[string][]string{
	"email": {"mail", "message"}, "mail": {"email", "messages"},
	"sms": {"text message", "texts"}, "message": {"sms", "text"},
	"photos": {"pictures", "pics", "images"}, "pictures": {"photos", "images"},
	"files": {"documents"}, "file": {"document"},
	"contact": {"contacts"}, "account": {"profile"},
	"episode": {"podcast", "show"}, "music": {"songs", "audio"},
	"timeline": {"feed", "stream"}, "articles": {"stories", "news"},
	"puzzle": {"crossword"}, "library": {"books", "collection"},
	"location": {"position", "gps"}, "route": {"directions", "path"},
	"cards": {"deck", "flashcards"}, "stats": {"statistics"},
	"game": {"match"}, "visit": {"log entry"}, "screen": {"display"},
	"notifications": {"alerts"}, "comment": {"reply"},
	"links": {"urls", "pages"}, "app": {"application"},
	"certificate": {"cert"}, "video": {"clip"},
}

// paraphrase substitutes user synonyms for the feature's own vocabulary in
// half of the reviews.
func paraphrase(f feature, rng *rand.Rand) (verb, object string) {
	verb, object = f.verb, f.object
	if rng.Intn(2) == 0 {
		if alts, ok := verbSynonyms[verb]; ok {
			verb = alts[rng.Intn(len(alts))]
		}
	}
	if rng.Intn(2) == 0 {
		if alts, ok := objectSynonyms[object]; ok {
			object = alts[rng.Intn(len(alts))]
		}
	}
	return verb, object
}

// errorReviewText renders an error review in the given context style.
func errorReviewText(t ctxinfo.Type, f feature, rng *rand.Rand) string {
	pick := func(opts ...string) string { return opts[rng.Intn(len(opts))] }
	pVerb, pObj := paraphrase(f, rng)
	verbObj := pVerb + " " + pObj
	var body string
	switch t {
	case ctxinfo.AppSpecificTask:
		body = pick(
			fmt.Sprintf("Keeps crashing every time i %s.", verbObj),
			fmt.Sprintf("The app fails when i try to %s.", verbObj),
			fmt.Sprintf("I cannot %s anymore, it just hangs.", verbObj),
			fmt.Sprintf("Crashes whenever i %s on my phone.", verbObj),
		)
	case ctxinfo.UpdatingApp:
		// A third of update complaints carry no secondary context — those
		// are the ones the diff-based localizer (§4.1.6) must handle.
		body = pick(
			fmt.Sprintf("App started crashing after recent update. Now i cannot %s.", verbObj),
			fmt.Sprintf("Since the new update i cannot %s anymore.", verbObj),
			"App started crashing after recent update.",
		)
	case ctxinfo.GUI:
		widgetWord := strings.Split(strings.ReplaceAll(f.widgetIDs[0], "_", " "), " ")[0]
		body = pick(
			fmt.Sprintf("The %s button now doesn't show, can't find any solutions.", widgetWord),
			fmt.Sprintf("The %s button is broken on my tablet.", widgetWord),
			fmt.Sprintf("%s issues everywhere, the screen is a mess.", upperFirst(f.object)),
		)
	case ctxinfo.ErrorMessage:
		body = pick(
			fmt.Sprintf("I receive an error message saying %q every time.", f.errorMessage),
			fmt.Sprintf("It just says %q and nothing happens.", f.errorMessage),
		)
	case ctxinfo.OpeningApp:
		body = pick(
			"It crashed every time i opened it.",
			"Crashes right after launch, cannot even open the app.",
			"The app won't start at all on my device.",
		)
	case ctxinfo.RegisteringAccount:
		body = pick(
			"Cannot login to my account.",
			"Registration does not work, the sign in page just spins.",
			"I cannot register a new account, it always fails.",
		)
	case ctxinfo.APIURIIntent:
		body = pick(
			fmt.Sprintf("But i cannot %s with it anymore.", verbObj),
			fmt.Sprintf("The app crashed when i tried to %s.", verbObj),
			fmt.Sprintf("Unable to %s on my phone.", verbObj),
		)
	case ctxinfo.GeneralTask:
		body = pick(
			fmt.Sprintf("Too many errors that prevent me to %s.", f.generalTask),
			fmt.Sprintf("I always get errors when i try to %s.", f.generalTask),
			fmt.Sprintf("Won't %s, keeps failing halfway.", f.generalTask),
		)
	case ctxinfo.Exception:
		body = fmt.Sprintf("There's a %s exception when it %ss.",
			exceptionWords(f.exception), f.verb)
	default: // Other: no usable context
		// More than half of the context-free complaints still contain
		// phrases that *look* localizable ("maybe when it syncs") — these
		// are the false mappings behind the paper's 70% precision
		// (Table 13's "cause of false mappings").
		body = pick(
			"Sometimes not working.",
			"Crash after crash. Uninstall very fast!",
			"Please fix the bug. i'm using xiaomi mi4c.",
			"Doesn't work properly anymore.",
			"It keeps crashing, maybe when it syncs data in the background.",
			"Randomly freezes, i think the notifications cause it.",
			"Breaks all the time, probably the login stuff.",
			"Something about loading pages makes it die.",
			"Dies constantly, could be the download queue or whatever.",
			"This app has started crashing more than a 737 airplane.",
		)
	}
	// Occasionally mix in a positive clause (exercises sentiment splitting)
	// or a preceding praise sentence.
	switch rng.Intn(5) {
	case 0:
		body = "It's a great app but " + lowerFirst(body)
	case 1:
		body = "I love the design. " + body
	}
	// Occasionally introduce shorthand (exercises normalization).
	if rng.Intn(6) == 0 {
		body = strings.ReplaceAll(body, "please", "pls")
		body = strings.ReplaceAll(body, "pictures", "pics")
	}
	return body
}

// exceptionWords converts an exception type name into review words
// ("SocketException" → "socket").
func exceptionWords(exception string) string {
	words := textproc.SplitIdentifier(exception)
	out := words[:0]
	for _, w := range words {
		if w == "exception" {
			continue
		}
		out = append(out, w)
	}
	return strings.Join(out, " ")
}

func lowerFirst(s string) string {
	if s == "" {
		return s
	}
	return strings.ToLower(s[:1]) + s[1:]
}

// nonErrorReviewText renders praise / feature requests / chatter.
func nonErrorReviewText(feats []feature, rng *rand.Rand) string {
	f := feats[rng.Intn(len(feats))]
	verbObj := f.verb + " " + f.object
	opts := []string{
		fmt.Sprintf("Great app, i use it every day to %s.", verbObj),
		fmt.Sprintf("Love how easy it is to %s.", verbObj),
		"Five stars, works perfectly on my phone.",
		fmt.Sprintf("Please add an option to %s in landscape mode.", verbObj),
		fmt.Sprintf("Would be nice to %s from the widget.", verbObj),
		"Beautiful design and very fast.",
		fmt.Sprintf("How do i %s with two accounts?", verbObj),
		"Best app in its category, highly recommend.",
		fmt.Sprintf("The %s feature is amazing.", f.object),
		"Thanks for the quick support response!",
	}
	return opts[rng.Intn(len(opts))]
}

// errorScore samples the Table 3 score distribution for error reviews:
// about a quarter of error reviews still rate 4–5 stars.
func errorScore(rng *rand.Rand) int {
	x := rng.Float64()
	switch {
	case x < 0.34:
		return 1
	case x < 0.53:
		return 2
	case x < 0.76:
		return 3
	case x < 0.95:
		return 4
	default:
		return 5
	}
}

// praiseScore samples scores for non-error reviews (mostly 4–5).
func praiseScore(rng *rand.Rand) int {
	x := rng.Float64()
	switch {
	case x < 0.06:
		return 1
	case x < 0.12:
		return 2
	case x < 0.25:
		return 3
	case x < 0.45:
		return 4
	default:
		return 5
	}
}

// generateBugReports emits one issue-tracker entry per fault (Fig. 5).
func generateBugReports(feats []feature, faults []Fault) []BugReport {
	out := make([]BugReport, 0, len(faults))
	for i, fault := range faults {
		f := feats[i]
		out = append(out, BugReport{
			ID:      1000 + fault.ID,
			FaultID: fault.ID,
			Title:   fmt.Sprintf("Crash when trying to %s %s", f.verb, f.object),
			Body: fmt.Sprintf(
				"Steps to reproduce: open the %s screen and %s. The app fails with %q.",
				f.activityBase, f.verb+" "+f.object, f.errorMessage),
			FixedClasses: append([]string(nil), fault.Classes...),
		})
	}
	return out
}

// generateReleaseNotes emits the per-release changelog (Fig. 6).
func generateReleaseNotes(app *apk.App, feats []feature, faults []Fault) []ReleaseNote {
	var out []ReleaseNote
	for v := 1; v < len(app.Releases); v++ {
		note := ReleaseNote{Version: app.Releases[v].Version}
		for i, fault := range faults {
			if fault.FixedIn != v {
				continue
			}
			f := feats[i]
			note.Lines = append(note.Lines,
				fmt.Sprintf("Fixed: %s %s failure", f.verb, f.object))
			note.FaultIDs = append(note.FaultIDs, fault.ID)
		}
		if len(note.FaultIDs) == 0 {
			continue
		}
		note.ChangedClasses = apk.DiffClasses(app.Releases[v-1], app.Releases[v])
		out = append(out, note)
	}
	return out
}
