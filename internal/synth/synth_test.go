package synth

import (
	"reflect"
	"testing"

	"reviewsolver/internal/ctxinfo"
)

func TestGenerateAppDeterministic(t *testing.T) {
	a := GenerateApp(table6Apps[4], 99) // K-9 Mail
	b := GenerateApp(table6Apps[4], 99)
	if a.Reviews[0].Text != b.Reviews[0].Text || len(a.Reviews) != len(b.Reviews) {
		t.Error("generation not deterministic")
	}
	if !reflect.DeepEqual(a.Faults, b.Faults) {
		t.Error("faults not deterministic")
	}
}

func TestGeneratedAppStructure(t *testing.T) {
	d := GenerateApp(table6Apps[4], 1) // K-9 Mail: 8 versions, bug reports + notes
	if len(d.App.Releases) != 8 {
		t.Errorf("releases = %d, want 8", len(d.App.Releases))
	}
	if _, ok := d.App.Latest().StartingActivity(); !ok {
		t.Error("no starting activity")
	}
	if len(d.App.Latest().Classes) < 10 {
		t.Errorf("only %d classes", len(d.App.Latest().Classes))
	}
	if len(d.BugReports) == 0 || len(d.ReleaseNotes) == 0 {
		t.Errorf("K-9 must have bug reports (%d) and release notes (%d)",
			len(d.BugReports), len(d.ReleaseNotes))
	}
	if len(d.Reviews) != table6Apps[4].reviews {
		t.Errorf("reviews = %d, want %d", len(d.Reviews), table6Apps[4].reviews)
	}
}

func TestFaultClassesExist(t *testing.T) {
	d := GenerateApp(table6Apps[2], 3) // Signal
	r := d.App.Latest()
	for _, f := range d.Faults {
		for _, cls := range f.Classes {
			if _, ok := r.FindClass(cls); !ok {
				t.Errorf("fault %d references missing class %s", f.ID, cls)
			}
		}
	}
}

func TestFaultFixSchedule(t *testing.T) {
	d := GenerateApp(table6Apps[4], 1)
	for _, f := range d.Faults {
		if f.FixedIn < 1 || f.FixedIn >= len(d.App.Releases) {
			t.Errorf("fault %d fixed in invalid release %d", f.ID, f.FixedIn)
		}
	}
	// Single-version apps never fix faults.
	focal := GenerateApp(table6Apps[6], 1)
	for _, f := range focal.Faults {
		if f.FixedIn != -1 {
			t.Errorf("single-version app fixed fault at %d", f.FixedIn)
		}
	}
}

func TestReleaseNotesMatchDiffs(t *testing.T) {
	d := GenerateApp(table6Apps[4], 1)
	for _, note := range d.ReleaseNotes {
		if len(note.FaultIDs) == 0 {
			t.Error("release note without fixed faults")
		}
		if len(note.ChangedClasses) == 0 {
			t.Errorf("release note %s has no changed classes", note.Version)
		}
		// Each fixed fault's worker class must be among the changed files.
		for _, fid := range note.FaultIDs {
			fault, ok := d.FaultByID(fid)
			if !ok {
				t.Fatalf("note references unknown fault %d", fid)
			}
			worker := fault.Classes[len(fault.Classes)-1]
			found := false
			for _, c := range note.ChangedClasses {
				if c == worker {
					found = true
				}
			}
			if !found {
				t.Errorf("fix for fault %d not in changed classes %v", fid, note.ChangedClasses)
			}
		}
	}
}

func TestBugReportsCoverFaults(t *testing.T) {
	d := GenerateApp(table6Apps[9], 1) // WordPress
	if len(d.BugReports) != len(d.Faults) {
		t.Errorf("bug reports = %d, faults = %d", len(d.BugReports), len(d.Faults))
	}
	for _, br := range d.BugReports {
		if len(br.FixedClasses) == 0 {
			t.Errorf("bug report %d has no fixed classes", br.ID)
		}
	}
}

func TestErrorReviewsHaveFaults(t *testing.T) {
	d := GenerateApp(table6Apps[0], 1)
	errCount := 0
	for _, r := range d.Reviews {
		if !r.IsError {
			if r.FaultID != -1 {
				t.Error("non-error review linked to fault")
			}
			continue
		}
		errCount++
		if r.Context != ctxinfo.Other && r.FaultID < 0 {
			t.Errorf("contextful error review %d has no fault", r.ID)
		}
	}
	frac := float64(errCount) / float64(len(d.Reviews))
	if frac < 0.25 || frac > 0.45 {
		t.Errorf("error fraction = %.2f, want ≈ 0.35", frac)
	}
}

func TestGenerateTable6(t *testing.T) {
	apps := GenerateTable6(1)
	if len(apps) != 18 {
		t.Fatalf("generated %d apps, want 18", len(apps))
	}
	bugApps, noteApps := 0, 0
	total := 0
	for _, a := range apps {
		total += len(a.Reviews)
		if len(a.BugReports) > 0 {
			bugApps++
		}
		if len(a.ReleaseNotes) > 0 {
			noteApps++
		}
	}
	if bugApps != 8 {
		t.Errorf("apps with bug reports = %d, want 8 (Table 8)", bugApps)
	}
	if noteApps != 6 {
		t.Errorf("apps with release notes = %d, want 6 (Table 9)", noteApps)
	}
	if total < 5000 {
		t.Errorf("total reviews = %d, suspiciously few", total)
	}
}

func TestGenerateTable14(t *testing.T) {
	apps := GenerateTable14(1)
	if len(apps) != 10 {
		t.Fatalf("generated %d apps, want 10", len(apps))
	}
}

func TestTrainingCorpus(t *testing.T) {
	docs := TrainingCorpus(7)
	if len(docs) != 1400 {
		t.Fatalf("corpus size = %d, want 1400", len(docs))
	}
	pos := 0
	for _, d := range docs {
		if d.Label {
			pos++
		}
	}
	if pos != 700 {
		t.Errorf("positive docs = %d, want 700", pos)
	}
}

func TestLabeledDatasetShapes(t *testing.T) {
	ciu := CiurumeleaDataset(7)
	if len(ciu) != 199 {
		t.Errorf("Ciurumelea size = %d, want 199", len(ciu))
	}
	pos := 0
	for _, d := range ciu {
		if d.Label {
			pos++
		}
	}
	if pos != 87 {
		t.Errorf("Ciurumelea positives = %d, want 87", pos)
	}

	maa := MaalejDataset(7)
	if len(maa) != 747 {
		t.Errorf("Maalej size = %d, want 747", len(maa))
	}
	pos = 0
	for _, d := range maa {
		if d.Label {
			pos++
		}
	}
	if pos != 369 {
		t.Errorf("Maalej positives = %d, want 369", pos)
	}
}

func TestScoreSample(t *testing.T) {
	sample := ScoreSample(7)
	if len(sample) != 900 {
		t.Fatalf("sample size = %d, want 900", len(sample))
	}
	perScore := make(map[int]int)
	errPerScore := make(map[int]int)
	for _, r := range sample {
		perScore[r.Score]++
		if r.IsError {
			errPerScore[r.Score]++
		}
	}
	for _, row := range scoreSampleShape {
		if perScore[row.score] != row.total {
			t.Errorf("score %d count = %d, want %d", row.score, perScore[row.score], row.total)
		}
		if errPerScore[row.score] != row.errors {
			t.Errorf("score %d errors = %d, want %d", row.score, errPerScore[row.score], row.errors)
		}
	}
}

func TestContextSample(t *testing.T) {
	apps := GenerateTable6(1)
	sample := ContextSample(apps, 250, 9)
	if len(sample) != 250 {
		t.Fatalf("context sample = %d, want 250", len(sample))
	}
	counts := make(map[ctxinfo.Type]int)
	for _, c := range sample {
		counts[c]++
	}
	// App Specific Task must be the most common specific context and Other
	// must be substantial — the Table 1 shape.
	if counts[ctxinfo.AppSpecificTask] < counts[ctxinfo.GUI] {
		t.Errorf("context shape off: %v", counts)
	}
	if counts[ctxinfo.Other] < 20 {
		t.Errorf("too few Other contexts: %v", counts)
	}
}

func TestSummary(t *testing.T) {
	d := GenerateApp(table6Apps[6], 1)
	s := d.Summary()
	if s == "" || len(s) < 20 {
		t.Errorf("Summary = %q", s)
	}
}

// TestGeneratedAppsValidate: every generated app IR must pass the apk
// validator (no dangling layout/string/activity references).
func TestGeneratedAppsValidate(t *testing.T) {
	for _, data := range append(GenerateTable6(2), GenerateTable14(2)...) {
		if issues := data.App.Validate(); len(issues) != 0 {
			t.Errorf("%s: %v", data.Info.Package, issues)
		}
	}
}
