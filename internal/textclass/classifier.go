package textclass

import (
	"math"
	"math/rand"
)

// Classifier is a trainable binary text classifier over sparse feature
// vectors. Positive label = function-error review.
type Classifier interface {
	// Fit trains on feature vectors xs with labels ys.
	Fit(xs []FeatureVector, ys []bool)
	// Predict returns the predicted label for one vector.
	Predict(x FeatureVector) bool
	// Name identifies the algorithm in Table 2.
	Name() string
}

// Factory creates a fresh classifier; cross-validation needs one per fold.
type Factory func() Classifier

// --- Naive Bayes ------------------------------------------------------------

// NaiveBayes is a multinomial naive Bayes classifier with Laplace
// smoothing. Like the paper's NB baseline it tends toward very high recall:
// any error-correlated feature pushes the posterior over the line.
type NaiveBayes struct {
	logPrior [2]float64
	logProb  [2]map[int]float64
	logUnk   [2]float64
	// bias shifts the decision boundary toward the positive class per
	// observed feature, matching the recall-heavy behaviour of
	// off-the-shelf NB text classifiers on short reviews (evidence
	// accumulates per feature, so a fixed offset would wash out on longer
	// reviews).
	bias float64
}

var _ Classifier = (*NaiveBayes)(nil)

// NewNaiveBayes returns an untrained NaiveBayes classifier.
func NewNaiveBayes() *NaiveBayes { return &NaiveBayes{bias: 0.55} }

// Name implements Classifier.
func (nb *NaiveBayes) Name() string { return "Naive bayes" }

// Fit implements Classifier.
func (nb *NaiveBayes) Fit(xs []FeatureVector, ys []bool) {
	var count [2]float64
	sum := [2]map[int]float64{make(map[int]float64), make(map[int]float64)}
	var total [2]float64
	vocab := make(map[int]struct{})
	for i, x := range xs {
		c := classIdx(ys[i])
		count[c]++
		for f, w := range x {
			sum[c][f] += w
			total[c] += w
			vocab[f] = struct{}{}
		}
	}
	n := float64(len(xs))
	vs := float64(len(vocab)) + 1
	for c := 0; c < 2; c++ {
		nb.logPrior[c] = math.Log((count[c] + 1) / (n + 2))
		nb.logProb[c] = make(map[int]float64, len(sum[c]))
		for f, s := range sum[c] {
			nb.logProb[c][f] = math.Log((s + 1) / (total[c] + vs))
		}
		nb.logUnk[c] = math.Log(1 / (total[c] + vs))
	}
}

// Predict implements Classifier.
func (nb *NaiveBayes) Predict(x FeatureVector) bool {
	score := [2]float64{nb.logPrior[0], nb.logPrior[1] + nb.bias*float64(len(x))}
	for f := range x {
		for c := 0; c < 2; c++ {
			if lp, ok := nb.logProb[c][f]; ok {
				score[c] += lp
			} else {
				score[c] += nb.logUnk[c]
			}
		}
	}
	return score[1] >= score[0]
}

func classIdx(label bool) int {
	if label {
		return 1
	}
	return 0
}

// --- Maximum entropy (logistic regression) ----------------------------------

// MaxEnt is an L2-regularized logistic regression trained with SGD.
// Mirroring the paper's MaxEnt baseline, it uses a recall-oriented decision
// threshold.
type MaxEnt struct {
	w         map[int]float64
	b         float64
	epochs    int
	lr        float64
	l2        float64
	threshold float64
	seed      int64
}

var _ Classifier = (*MaxEnt)(nil)

// NewMaxEnt returns an untrained MaxEnt classifier.
func NewMaxEnt() *MaxEnt {
	return &MaxEnt{epochs: 6, lr: 0.25, l2: 5e-4, threshold: 0.12, seed: 7}
}

// Name implements Classifier.
func (m *MaxEnt) Name() string { return "Max entropy" }

// Fit implements Classifier.
func (m *MaxEnt) Fit(xs []FeatureVector, ys []bool) {
	m.w = make(map[int]float64)
	m.b = 0
	rng := rand.New(rand.NewSource(m.seed))
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	for e := 0; e < m.epochs; e++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		lr := m.lr / (1 + 0.1*float64(e))
		for _, i := range idx {
			p := m.prob(xs[i])
			y := 0.0
			if ys[i] {
				y = 1
			}
			g := p - y
			for f, v := range xs[i] {
				m.w[f] -= lr * (g*v + m.l2*m.w[f])
			}
			m.b -= lr * g
		}
	}
}

func (m *MaxEnt) prob(x FeatureVector) float64 {
	z := m.b
	for f, v := range x {
		z += m.w[f] * v
	}
	return 1 / (1 + math.Exp(-z))
}

// Predict implements Classifier.
func (m *MaxEnt) Predict(x FeatureVector) bool { return m.prob(x) >= m.threshold }

// --- Linear SVM ---------------------------------------------------------------

// SVM is a linear support vector machine trained with the Pegasos
// stochastic sub-gradient algorithm on hinge loss. The weight vector is
// stored with a lazy global scale so the per-step L2 shrink is O(1).
type SVM struct {
	w      map[int]float64
	scale  float64
	b      float64
	lambda float64
	epochs int
	seed   int64
}

var _ Classifier = (*SVM)(nil)

// NewSVM returns an untrained linear SVM.
func NewSVM() *SVM { return &SVM{lambda: 1e-4, epochs: 40, seed: 11, scale: 1} }

// Name implements Classifier.
func (s *SVM) Name() string { return "SVM" }

// Fit implements Classifier.
func (s *SVM) Fit(xs []FeatureVector, ys []bool) {
	s.w = make(map[int]float64)
	s.scale = 1
	s.b = 0
	rng := rand.New(rand.NewSource(s.seed))
	t := 0
	for e := 0; e < s.epochs; e++ {
		order := rng.Perm(len(xs))
		for _, i := range order {
			t++
			eta := 1 / (s.lambda * float64(t))
			y := -1.0
			if ys[i] {
				y = 1
			}
			margin := s.b
			for f, v := range xs[i] {
				margin += s.scale * s.w[f] * v
			}
			// Lazy L2 shrink: fold (1 - eta*lambda) into the scale.
			shrink := 1 - eta*s.lambda
			if shrink <= 1e-12 {
				shrink = 1e-12
			}
			s.scale *= shrink
			if s.scale < 1e-9 {
				// Renormalize to keep numbers healthy.
				for f := range s.w {
					s.w[f] *= s.scale
				}
				s.scale = 1
			}
			if y*margin < 1 {
				for f, v := range xs[i] {
					s.w[f] += eta * y * v / s.scale
				}
				s.b += eta * y * 0.01
			}
		}
	}
}

// Predict implements Classifier.
func (s *SVM) Predict(x FeatureVector) bool {
	margin := s.b
	for f, v := range x {
		margin += s.scale * s.w[f] * v
	}
	return margin >= 0
}
