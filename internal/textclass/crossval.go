package textclass

import (
	"math/rand"
)

// Metrics are binary-classification quality measures.
type Metrics struct {
	Precision float64
	Recall    float64
	F1        float64
	TP, FP    int
	TN, FN    int
}

// computeMetrics derives precision/recall/F1 from the confusion counts.
func (m *Metrics) compute() {
	if m.TP+m.FP > 0 {
		m.Precision = float64(m.TP) / float64(m.TP+m.FP)
	}
	if m.TP+m.FN > 0 {
		m.Recall = float64(m.TP) / float64(m.TP+m.FN)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
}

// Evaluate trains on the train split and measures on the test split.
func Evaluate(c Classifier, v *Vectorizer, train, test []Document) Metrics {
	xs, ys := v.TransformAll(train)
	c.Fit(xs, ys)
	var m Metrics
	for _, d := range test {
		pred := c.Predict(v.Transform(d.Text))
		switch {
		case pred && d.Label:
			m.TP++
		case pred && !d.Label:
			m.FP++
		case !pred && d.Label:
			m.FN++
		default:
			m.TN++
		}
	}
	m.compute()
	return m
}

// CrossValidate runs k-fold cross-validation with a fixed shuffle seed and
// returns the pooled metrics (confusion counts summed over folds, as the
// paper reports a single precision/recall per classifier).
func CrossValidate(k int, docs []Document, factory Factory, seed int64) Metrics {
	if k < 2 {
		k = 2
	}
	shuffled := make([]Document, len(docs))
	copy(shuffled, docs)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

	var total Metrics
	foldSize := len(shuffled) / k
	for fold := 0; fold < k; fold++ {
		lo := fold * foldSize
		hi := lo + foldSize
		if fold == k-1 {
			hi = len(shuffled)
		}
		test := shuffled[lo:hi]
		train := make([]Document, 0, len(shuffled)-len(test))
		train = append(train, shuffled[:lo]...)
		train = append(train, shuffled[hi:]...)

		vec := NewVectorizer()
		vec.Fit(train)
		m := Evaluate(factory(), vec, train, test)
		total.TP += m.TP
		total.FP += m.FP
		total.TN += m.TN
		total.FN += m.FN
	}
	total.compute()
	return total
}

// TrainOn fits a vectorizer and classifier on a corpus and returns both,
// ready for prediction on new reviews.
func TrainOn(docs []Document, factory Factory) (*Vectorizer, Classifier) {
	vec := NewVectorizer()
	vec.Fit(docs)
	xs, ys := vec.TransformAll(docs)
	c := factory()
	c.Fit(xs, ys)
	return vec, c
}
