// Package textclass implements the supervised review classifier of §3.2.2:
// TF-IDF and N-gram (N=2,3) features with negation-aware feature removal,
// and the five learning algorithms the paper compares in Table 2 (naive
// Bayes, random forest, linear SVM, maximum entropy, boosted regression
// trees), plus k-fold cross-validation.
package textclass

import (
	"math"
	"sort"
	"strings"
	"sync"

	"reviewsolver/internal/parser"
	"reviewsolver/internal/phrase"
	"reviewsolver/internal/textproc"
)

// Document is a labeled training text.
type Document struct {
	// Text is the raw review text.
	Text string
	// Label is true for function-error reviews.
	Label bool
}

// FeatureVector is a sparse feature representation.
type FeatureVector map[int]float64

// Vectorizer converts review text into TF-IDF + n-gram feature vectors.
// It must be fitted on a corpus before transforming.
type Vectorizer struct {
	vocab    map[string]int
	idf      []float64
	negAware bool
	parser   *parser.Parser
}

// VectorizerOption configures a Vectorizer.
type VectorizerOption func(*Vectorizer)

// WithoutNegationFiltering disables the typed-dependency negation filter
// (used by the ablation experiments).
func WithoutNegationFiltering() VectorizerOption {
	return func(v *Vectorizer) { v.negAware = false }
}

// NewVectorizer returns an unfitted vectorizer.
func NewVectorizer(opts ...VectorizerOption) *Vectorizer {
	v := &Vectorizer{
		vocab:    make(map[string]int),
		negAware: true,
		parser:   parser.New(),
	}
	for _, opt := range opts {
		opt(v)
	}
	return v
}

// tokensOf produces the effective token stream of a review: lower-cased
// words with negation-related error words removed (§3.2.2: "Since both
// 'bug' and 'not' are related to verb 'contain', we regard 'bug' as being
// related to 'not', and thus remove the word 'bug' related features").
func (v *Vectorizer) tokensOf(text string) []string {
	return v.tokensOfInto(nil, nil, text)
}

// tokensOfInto is tokensOf appending into caller-owned scratch: a reusable
// word slice and negation drop set (Transform pools both so classification
// does not reallocate them per review).
func (v *Vectorizer) tokensOfInto(words []string, drop map[int]bool, text string) []string {
	for _, sentence := range textproc.SplitSentences(text) {
		if !v.negAware {
			words = append(words, textproc.Words(sentence)...)
			continue
		}
		p := v.parser.ParseSentence(sentence)
		// The whole negated error mention is dropped — the error word AND
		// the negation tied to it — so that neither "bug" nor the "no"/"not"
		// that cancels it feeds the classifier.
		if drop == nil {
			drop = make(map[int]bool)
		} else {
			clear(drop)
		}
		for _, nd := range p.DepsWithRel(parser.RelNeg) {
			// Error words that are objects (or passive subjects) of a
			// negated verb do not signal a real error.
			for _, d := range p.Deps {
				if d.Head != nd.Head {
					continue
				}
				switch d.Rel {
				case parser.RelDObj, parser.RelNSubjPass, parser.RelNSubj:
					if phrase.IsErrorWord(p.Tokens[d.Dep].Lower) {
						drop[d.Dep] = true
						drop[nd.Dep] = true
					}
				}
			}
		}
		// Determiner negation: "no bugs", "zero errors".
		for _, d := range p.DepsWithRel(parser.RelDet) {
			det := p.Tokens[d.Dep].Lower
			if (det == "no" || det == "zero" || det == "none") &&
				phrase.IsErrorWord(p.Tokens[d.Head].Lower) {
				drop[d.Head] = true
				drop[d.Dep] = true
			}
		}
		// Token-level fallback for clauses the chunker does not cover: an
		// error word with a negation word within the three preceding tokens.
		for i := 1; i < len(p.Tokens); i++ {
			if !phrase.IsErrorWord(p.Tokens[i].Lower) {
				continue
			}
			for j := i - 1; j >= 0 && j >= i-3; j-- {
				switch p.Tokens[j].Lower {
				case "no", "zero", "without", "never", "not":
					drop[i] = true
					drop[j] = true
				}
			}
		}
		for i, t := range p.Tokens {
			if drop[i] {
				continue
			}
			if t.Kind == textproc.Word || t.Kind == textproc.Number {
				words = append(words, t.Lower)
			}
		}
	}
	return words
}

// featuresOf lists the raw feature strings of a token stream: unigrams plus
// 2-grams and 3-grams.
func featuresOf(words []string) []string {
	out := make([]string, 0, len(words)*3)
	out = append(out, words...)
	for i := 0; i+1 < len(words); i++ {
		out = append(out, words[i]+" "+words[i+1])
	}
	for i := 0; i+2 < len(words); i++ {
		out = append(out, words[i]+" "+words[i+1]+" "+words[i+2])
	}
	return out
}

// Fit builds the vocabulary and IDF table from a corpus.
func (v *Vectorizer) Fit(docs []Document) {
	df := make(map[string]int)
	for _, d := range docs {
		feats := featuresOf(v.tokensOf(d.Text))
		seen := make(map[string]struct{}, len(feats))
		for _, f := range feats {
			if _, dup := seen[f]; dup {
				continue
			}
			seen[f] = struct{}{}
			df[f]++
		}
	}
	// Deterministic vocabulary order; drop hapax n-grams to bound the space.
	keys := make([]string, 0, len(df))
	for f, c := range df {
		if c >= 2 || !strings.Contains(f, " ") {
			keys = append(keys, f)
		}
	}
	sort.Strings(keys)
	v.idf = make([]float64, len(keys))
	n := float64(len(docs))
	for i, f := range keys {
		v.vocab[f] = i
		v.idf[i] = math.Log(n / float64(df[f]))
	}
}

// VocabSize returns the number of features after fitting.
func (v *Vectorizer) VocabSize() int { return len(v.vocab) }

// FeatureName returns the raw feature string (word or n-gram) behind a
// feature index, for introspection of trained models.
func (v *Vectorizer) FeatureName(idx int) (string, bool) {
	for name, i := range v.vocab {
		if i == idx {
			return name, true
		}
	}
	return "", false
}

// TopFeatureNames resolves the k highest-importance features of a trained
// BoostedTrees model into their raw strings, most important first.
func (v *Vectorizer) TopFeatureNames(bt *BoostedTrees, k int) []string {
	imp := bt.FeatureImportances()
	idxs := make([]int, 0, len(imp))
	for f := range imp {
		idxs = append(idxs, f)
	}
	sort.Slice(idxs, func(a, b int) bool {
		if imp[idxs[a]] != imp[idxs[b]] {
			return imp[idxs[a]] > imp[idxs[b]]
		}
		return idxs[a] < idxs[b]
	})
	if k > len(idxs) {
		k = len(idxs)
	}
	// Invert the vocabulary once instead of per lookup.
	inv := make(map[int]string, len(v.vocab))
	for name, i := range v.vocab {
		inv[i] = name
	}
	out := make([]string, 0, k)
	for _, f := range idxs[:k] {
		out = append(out, inv[f])
	}
	return out
}

// transformScratch recycles the per-call working state of Transform: the
// token slice, the negation drop set, the n-gram key buffer, and the counts
// map. One Vectorizer is shared across pool workers, so the scratch lives in
// a pool rather than on the struct.
type transformScratch struct {
	words  []string
	drop   map[int]bool
	key    []byte
	counts map[int]int
}

var transformScratchPool = sync.Pool{
	New: func() any {
		return &transformScratch{
			drop:   make(map[int]bool, 8),
			words:  make([]string, 0, 64),
			key:    make([]byte, 0, 64),
			counts: make(map[int]int, 64),
		}
	},
}

func (sc *transformScratch) release() {
	clear(sc.drop)
	clear(sc.counts)
	sc.words = sc.words[:0]
	sc.key = sc.key[:0]
	transformScratchPool.Put(sc)
}

// Transform converts a review text into its sparse feature vector:
// TF×IDF for unigrams, binary×IDF presence for n-grams. N-gram vocabulary
// lookups build their keys in a reused byte buffer and index the map with a
// direct string conversion, which the compiler compiles to an allocation-free
// probe — feature counting allocates only the returned vector.
func (v *Vectorizer) Transform(text string) FeatureVector {
	sc := transformScratchPool.Get().(*transformScratch)
	words := v.tokensOfInto(sc.words[:0], sc.drop, text)
	sc.words = words
	if len(words) == 0 {
		sc.release()
		return FeatureVector{}
	}
	counts := sc.counts
	for _, w := range words {
		if idx, ok := v.vocab[w]; ok {
			counts[idx]++
		}
	}
	key := sc.key
	for i := 0; i+1 < len(words); i++ {
		key = append(key[:0], words[i]...)
		key = append(key, ' ')
		key = append(key, words[i+1]...)
		if idx, ok := v.vocab[string(key)]; ok {
			counts[idx]++
		}
	}
	for i := 0; i+2 < len(words); i++ {
		key = append(key[:0], words[i]...)
		key = append(key, ' ')
		key = append(key, words[i+1]...)
		key = append(key, ' ')
		key = append(key, words[i+2]...)
		if idx, ok := v.vocab[string(key)]; ok {
			counts[idx]++
		}
	}
	sc.key = key
	vec := make(FeatureVector, len(counts))
	total := float64(len(words))
	for idx, c := range counts {
		tf := float64(c) / total
		vec[idx] = tf * v.idf[idx]
	}
	sc.release()
	return vec
}

// TransformAll converts a corpus.
func (v *Vectorizer) TransformAll(docs []Document) ([]FeatureVector, []bool) {
	xs := make([]FeatureVector, len(docs))
	ys := make([]bool, len(docs))
	for i, d := range docs {
		xs[i] = v.Transform(d.Text)
		ys[i] = d.Label
	}
	return xs, ys
}
