package textclass

import (
	"math/rand"
	"strings"
	"testing"
)

// importanceCorpus: "crash"/"broken" drive the label; filler words do not.
func importanceCorpus(n int) []Document {
	rng := rand.New(rand.NewSource(3))
	filler := []string{"the", "app", "today", "phone", "screen", "really", "very"}
	docs := make([]Document, 0, n)
	for i := 0; i < n; i++ {
		words := make([]string, 0, 8)
		for k := 0; k < 5; k++ {
			words = append(words, filler[rng.Intn(len(filler))])
		}
		label := i%2 == 0
		if label {
			if i%4 == 0 {
				words = append(words, "crash")
			} else {
				words = append(words, "broken")
			}
		} else {
			words = append(words, "love")
		}
		docs = append(docs, Document{Text: strings.Join(words, " "), Label: label})
	}
	return docs
}

func TestFeatureImportances(t *testing.T) {
	docs := importanceCorpus(400)
	vec := NewVectorizer()
	vec.Fit(docs)
	xs, ys := vec.TransformAll(docs)
	bt := NewBoostedTrees()
	bt.Fit(xs, ys)

	top := vec.TopFeatureNames(bt, 8)
	if len(top) == 0 {
		t.Fatal("no importances")
	}
	joined := strings.Join(top, " | ")
	foundSignal := false
	for _, want := range []string{"crash", "broken", "love"} {
		for _, f := range top {
			if f == want {
				foundSignal = true
			}
		}
	}
	if !foundSignal {
		t.Errorf("top features %s contain none of the label-driving words", joined)
	}
}

func TestFeatureNameRoundtrip(t *testing.T) {
	vec := NewVectorizer()
	vec.Fit([]Document{{Text: "crash report", Label: true}})
	found := false
	for i := 0; i < vec.VocabSize(); i++ {
		name, ok := vec.FeatureName(i)
		if !ok {
			t.Fatalf("index %d unresolved", i)
		}
		if name == "crash" {
			found = true
		}
	}
	if !found {
		t.Error("feature 'crash' not in vocabulary")
	}
	if _, ok := vec.FeatureName(1 << 30); ok {
		t.Error("bogus index resolved")
	}
}

func TestImportancesEmptyModel(t *testing.T) {
	bt := NewBoostedTrees()
	if got := bt.FeatureImportances(); len(got) != 0 {
		t.Errorf("untrained model has importances: %v", got)
	}
}
