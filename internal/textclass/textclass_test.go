package textclass

import (
	"math/rand"
	"testing"
)

// corpus builds a deterministic labeled corpus of error and non-error
// reviews from templates with lexical variation.
func corpus(n int) []Document {
	errTemplates := []string{
		"the app keeps crashing when i open %s",
		"cannot %s anymore since the update",
		"it fails to %s every time",
		"%s does not work on my phone",
		"i get an error when i try to %s",
		"the app froze while i was trying to %s",
		"unable to %s, it just hangs",
		"%s button is broken",
		"crashes every time i %s",
		"the %s screen shows a blank page",
	}
	okTemplates := []string{
		"i love how easy it is to %s",
		"great app, %s works perfectly",
		"please add an option to %s",
		"the %s feature is beautiful",
		"best app for %s ever",
		"i use it daily to %s",
		"would be nice to %s in landscape",
		"thanks for the quick %s support",
		"the new %s design looks amazing",
		"five stars, %s is so smooth",
	}
	fills := []string{
		"sync contacts", "send messages", "upload photos", "download files",
		"login", "read articles", "play podcasts", "save drafts",
		"search routes", "register account", "backup sms", "browse feeds",
		"post comments", "track packages", "stream music", "export notes",
	}
	rng := rand.New(rand.NewSource(42))
	docs := make([]Document, 0, n)
	for i := 0; i < n; i++ {
		fill := fills[rng.Intn(len(fills))]
		if i%2 == 0 {
			t := errTemplates[rng.Intn(len(errTemplates))]
			docs = append(docs, Document{Text: sprintf1(t, fill), Label: true})
		} else {
			t := okTemplates[rng.Intn(len(okTemplates))]
			docs = append(docs, Document{Text: sprintf1(t, fill), Label: false})
		}
	}
	return docs
}

func sprintf1(template, fill string) string {
	out := ""
	for i := 0; i < len(template); i++ {
		if template[i] == '%' && i+1 < len(template) && template[i+1] == 's' {
			out += fill
			i++
			continue
		}
		out += string(template[i])
	}
	return out
}

func TestVectorizerFitTransform(t *testing.T) {
	docs := corpus(100)
	v := NewVectorizer()
	v.Fit(docs)
	if v.VocabSize() == 0 {
		t.Fatal("empty vocabulary")
	}
	x := v.Transform("the app keeps crashing")
	if len(x) == 0 {
		t.Fatal("empty feature vector for in-vocabulary text")
	}
	for f, val := range x {
		if val <= 0 {
			t.Errorf("feature %d has non-positive weight %f", f, val)
		}
	}
}

func TestVectorizerNegationFiltering(t *testing.T) {
	docs := []Document{
		{Text: "the app contains bugs", Label: true},
		{Text: "the app works fine", Label: false},
	}
	v := NewVectorizer()
	v.Fit(docs)
	// "the app does not contain any bugs": the negated error word "bugs"
	// must not contribute features.
	withNeg := v.tokensOf("the app does not contain any bugs")
	for _, w := range withNeg {
		if w == "bugs" {
			t.Errorf("negated error word 'bugs' not filtered: %v", withNeg)
		}
	}
	// Without negation the word survives.
	plain := v.tokensOf("the app contains bugs")
	found := false
	for _, w := range plain {
		if w == "bugs" {
			found = true
		}
	}
	if !found {
		t.Errorf("non-negated 'bugs' wrongly removed: %v", plain)
	}
}

func TestVectorizerWithoutNegationFiltering(t *testing.T) {
	v := NewVectorizer(WithoutNegationFiltering())
	v.Fit([]Document{{Text: "app bugs", Label: true}})
	words := v.tokensOf("the app does not contain any bugs")
	found := false
	for _, w := range words {
		if w == "bugs" {
			found = true
		}
	}
	if !found {
		t.Error("negation filtering should be disabled")
	}
}

func TestAllClassifiersLearn(t *testing.T) {
	docs := corpus(300)
	factories := []Factory{
		func() Classifier { return NewNaiveBayes() },
		func() Classifier { return NewMaxEnt() },
		func() Classifier { return NewSVM() },
		func() Classifier { return NewRandomForest() },
		func() Classifier { return NewBoostedTrees() },
	}
	for _, factory := range factories {
		c := factory()
		t.Run(c.Name(), func(t *testing.T) {
			m := CrossValidate(5, docs, factory, 1)
			if m.F1 < 0.7 {
				t.Errorf("%s F1 = %.3f (P=%.3f R=%.3f), want >= 0.7",
					c.Name(), m.F1, m.Precision, m.Recall)
			}
		})
	}
}

func TestBoostedTreesBest(t *testing.T) {
	// Table 2's headline: boosted regression trees have the best F1.
	docs := corpus(400)
	brt := CrossValidate(5, docs, func() Classifier { return NewBoostedTrees() }, 1)
	nb := CrossValidate(5, docs, func() Classifier { return NewNaiveBayes() }, 1)
	if brt.F1+0.05 < nb.F1 {
		t.Errorf("BRT F1 %.3f should not trail NB F1 %.3f by more than 0.05", brt.F1, nb.F1)
	}
}

func TestNaiveBayesHighRecall(t *testing.T) {
	// The paper's NB shows recall ~99%: it flags nearly every error review.
	docs := corpus(300)
	m := CrossValidate(5, docs, func() Classifier { return NewNaiveBayes() }, 1)
	if m.Recall < 0.85 {
		t.Errorf("NB recall = %.3f, want >= 0.85", m.Recall)
	}
}

func TestClassifierNames(t *testing.T) {
	want := map[string]Classifier{
		"Naive bayes":              NewNaiveBayes(),
		"Random forest":            NewRandomForest(),
		"SVM":                      NewSVM(),
		"Max entropy":              NewMaxEnt(),
		"Boosted regression trees": NewBoostedTrees(),
	}
	for name, c := range want {
		if c.Name() != name {
			t.Errorf("Name() = %q, want %q", c.Name(), name)
		}
	}
}

func TestMetricsCompute(t *testing.T) {
	m := Metrics{TP: 8, FP: 2, FN: 2, TN: 8}
	m.compute()
	if m.Precision != 0.8 || m.Recall != 0.8 {
		t.Errorf("P=%.2f R=%.2f, want 0.8/0.8", m.Precision, m.Recall)
	}
	if m.F1 < 0.79 || m.F1 > 0.81 {
		t.Errorf("F1 = %.3f", m.F1)
	}
}

func TestMetricsZeroDivision(t *testing.T) {
	var m Metrics
	m.compute() // must not panic
	if m.Precision != 0 || m.Recall != 0 || m.F1 != 0 {
		t.Error("zero confusion should yield zero metrics")
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	docs := corpus(120)
	a := CrossValidate(4, docs, func() Classifier { return NewBoostedTrees() }, 5)
	b := CrossValidate(4, docs, func() Classifier { return NewBoostedTrees() }, 5)
	if a != b {
		t.Errorf("cross-validation not deterministic: %+v vs %+v", a, b)
	}
}

func TestTrainOnPredicts(t *testing.T) {
	docs := corpus(300)
	vec, c := TrainOn(docs, func() Classifier { return NewBoostedTrees() })
	if !c.Predict(vec.Transform("the app keeps crashing when i upload photos")) {
		t.Error("clear error review not detected")
	}
	if c.Predict(vec.Transform("great app, sync contacts works perfectly")) {
		t.Error("clear positive review flagged as error")
	}
}

func TestEmptyTransform(t *testing.T) {
	v := NewVectorizer()
	v.Fit(corpus(10))
	if x := v.Transform(""); len(x) != 0 {
		t.Errorf("empty text produced %d features", len(x))
	}
}
