package textclass

import (
	"math"
	"math/rand"
	"sort"
)

// treeNode is a binary decision node splitting on feature presence
// (x[feature] > 0). Leaves hold a value: a class probability for the forest,
// a regression response for boosting.
type treeNode struct {
	feature     int
	left, right *treeNode
	value       float64
	leaf        bool
}

func (n *treeNode) eval(x FeatureVector) float64 {
	for !n.leaf {
		if x[n.feature] > 0 {
			n = n.right
		} else {
			n = n.left
		}
	}
	return n.value
}

// featurePool lists the distinct features present in a sample set, sorted
// for determinism.
func featurePool(xs []FeatureVector, idx []int) []int {
	set := make(map[int]struct{})
	for _, i := range idx {
		for f := range xs[i] {
			set[f] = struct{}{}
		}
	}
	out := make([]int, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Ints(out)
	return out
}

// --- Random forest -----------------------------------------------------------

// RandomForest is a bagged ensemble of Gini-split decision trees over
// presence features.
type RandomForest struct {
	trees    []*treeNode
	numTrees int
	maxDepth int
	minLeaf  int
	seed     int64
}

var _ Classifier = (*RandomForest)(nil)

// NewRandomForest returns an untrained forest with the default ensemble
// size.
func NewRandomForest() *RandomForest {
	return &RandomForest{numTrees: 40, maxDepth: 14, minLeaf: 2, seed: 17}
}

// Name implements Classifier.
func (rf *RandomForest) Name() string { return "Random forest" }

// Fit implements Classifier.
func (rf *RandomForest) Fit(xs []FeatureVector, ys []bool) {
	rng := rand.New(rand.NewSource(rf.seed))
	rf.trees = make([]*treeNode, 0, rf.numTrees)
	n := len(xs)
	for t := 0; t < rf.numTrees; t++ {
		// Bootstrap sample.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		pool := featurePool(xs, idx)
		tree := rf.grow(xs, ys, idx, pool, 0, rng)
		rf.trees = append(rf.trees, tree)
	}
}

func (rf *RandomForest) grow(xs []FeatureVector, ys []bool, idx, pool []int, depth int, rng *rand.Rand) *treeNode {
	pos := 0
	for _, i := range idx {
		if ys[i] {
			pos++
		}
	}
	prob := float64(pos) / float64(len(idx))
	if depth >= rf.maxDepth || len(idx) < 2*rf.minLeaf || pos == 0 || pos == len(idx) {
		return &treeNode{leaf: true, value: prob}
	}
	// mtry = sqrt(|pool|) random candidate features.
	mtry := int(math.Sqrt(float64(len(pool)))) + 1
	bestFeature, bestGain := -1, 0.0
	parentGini := gini(pos, len(idx))
	for k := 0; k < mtry; k++ {
		f := pool[rng.Intn(len(pool))]
		lp, ln, rp, rn := 0, 0, 0, 0
		for _, i := range idx {
			if xs[i][f] > 0 {
				rn++
				if ys[i] {
					rp++
				}
			} else {
				ln++
				if ys[i] {
					lp++
				}
			}
		}
		if ln < rf.minLeaf || rn < rf.minLeaf {
			continue
		}
		total := float64(ln + rn)
		g := parentGini - (float64(ln)/total)*gini(lp, ln) - (float64(rn)/total)*gini(rp, rn)
		if g > bestGain {
			bestGain, bestFeature = g, f
		}
	}
	if bestFeature < 0 || bestGain < 1e-9 {
		return &treeNode{leaf: true, value: prob}
	}
	var li, ri []int
	for _, i := range idx {
		if xs[i][bestFeature] > 0 {
			ri = append(ri, i)
		} else {
			li = append(li, i)
		}
	}
	return &treeNode{
		feature: bestFeature,
		left:    rf.grow(xs, ys, li, pool, depth+1, rng),
		right:   rf.grow(xs, ys, ri, pool, depth+1, rng),
	}
}

func gini(pos, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(pos) / float64(n)
	return 2 * p * (1 - p)
}

// Predict implements Classifier.
func (rf *RandomForest) Predict(x FeatureVector) bool {
	sum := 0.0
	for _, t := range rf.trees {
		sum += t.eval(x)
	}
	return sum/float64(len(rf.trees)) >= 0.5
}

// --- Boosted regression trees -------------------------------------------------

// BoostedTrees is a gradient-boosting ensemble of shallow regression trees
// on logistic loss — the "boosted regression trees" algorithm the paper
// selects for ReviewSolver (precision 91.4%, recall 92.0% in Table 2).
// Each iteration fits a depth-limited regression tree to the negative
// gradient (residual) and re-weights misclassified samples through the
// residuals, exactly the mechanism described in §3.2.2.
type BoostedTrees struct {
	trees     []*treeNode
	shrinkage float64
	numTrees  int
	maxDepth  int
	bias      float64
	seed      int64
}

var _ Classifier = (*BoostedTrees)(nil)

// NewBoostedTrees returns an untrained boosted ensemble.
func NewBoostedTrees() *BoostedTrees {
	return &BoostedTrees{shrinkage: 0.2, numTrees: 200, maxDepth: 6, seed: 23}
}

// Name implements Classifier.
func (bt *BoostedTrees) Name() string { return "Boosted regression trees" }

// Fit implements Classifier.
func (bt *BoostedTrees) Fit(xs []FeatureVector, ys []bool) {
	n := len(xs)
	y := make([]float64, n)
	pos := 0
	for i, label := range ys {
		if label {
			y[i] = 1
			pos++
		}
	}
	// Initial score: log-odds of the prior.
	p0 := (float64(pos) + 1) / (float64(n) + 2)
	bt.bias = math.Log(p0 / (1 - p0))
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = bt.bias
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(bt.seed))
	pool := featurePool(xs, idx)
	residual := make([]float64, n)
	bt.trees = make([]*treeNode, 0, bt.numTrees)
	for t := 0; t < bt.numTrees; t++ {
		for i := range residual {
			p := sigmoid(scores[i])
			residual[i] = y[i] - p
		}
		tree := bt.growRegression(xs, residual, idx, pool, 0, rng)
		bt.trees = append(bt.trees, tree)
		for i := range scores {
			scores[i] += bt.shrinkage * tree.eval(xs[i])
		}
	}
}

func (bt *BoostedTrees) growRegression(xs []FeatureVector, r []float64, idx, pool []int, depth int, rng *rand.Rand) *treeNode {
	mean := meanOf(r, idx)
	if depth >= bt.maxDepth || len(idx) < 4 {
		return &treeNode{leaf: true, value: mean}
	}
	// Sample a subset of candidate features per node.
	mtry := int(math.Sqrt(float64(len(pool))))*3 + 1
	bestFeature := -1
	bestScore := variance(r, idx) * float64(len(idx))
	parentScore := bestScore
	for k := 0; k < mtry; k++ {
		f := pool[rng.Intn(len(pool))]
		var ls, rs float64
		var lc, rc int
		for _, i := range idx {
			if xs[i][f] > 0 {
				rs += r[i]
				rc++
			} else {
				ls += r[i]
				lc++
			}
		}
		if lc < 2 || rc < 2 {
			continue
		}
		// SSE after split = Σr² - (Σ_l)²/n_l - (Σ_r)²/n_r ; Σr² is common,
		// so maximize the explained part.
		var sq float64
		for _, i := range idx {
			sq += r[i] * r[i]
		}
		sse := sq - ls*ls/float64(lc) - rs*rs/float64(rc)
		if sse < bestScore-1e-12 {
			bestScore, bestFeature = sse, f
		}
	}
	if bestFeature < 0 || parentScore-bestScore < 1e-9 {
		return &treeNode{leaf: true, value: mean}
	}
	var li, ri []int
	for _, i := range idx {
		if xs[i][bestFeature] > 0 {
			ri = append(ri, i)
		} else {
			li = append(li, i)
		}
	}
	return &treeNode{
		feature: bestFeature,
		left:    bt.growRegression(xs, r, li, pool, depth+1, rng),
		right:   bt.growRegression(xs, r, ri, pool, depth+1, rng),
	}
}

// Predict implements Classifier.
func (bt *BoostedTrees) Predict(x FeatureVector) bool {
	score := bt.bias
	for _, t := range bt.trees {
		score += bt.shrinkage * t.eval(x)
	}
	return sigmoid(score) >= 0.5
}

// FeatureImportances returns the gradient-boosting importance of each
// feature: the total absolute difference between the two child responses of
// every split on that feature, summed over the ensemble. Higher means the
// feature moves predictions more. Useful for inspecting what the review
// classifier learned (e.g. that "crash" and "cannot" dominate).
func (bt *BoostedTrees) FeatureImportances() map[int]float64 {
	out := make(map[int]float64)
	var walk func(n *treeNode)
	walk = func(n *treeNode) {
		if n == nil || n.leaf {
			return
		}
		out[n.feature] += childDelta(n)
		walk(n.left)
		walk(n.right)
	}
	for _, tr := range bt.trees {
		walk(tr)
	}
	return out
}

// childDelta measures how far a split separates its children's responses.
func childDelta(n *treeNode) float64 {
	l, r := subtreeMean(n.left), subtreeMean(n.right)
	d := l - r
	if d < 0 {
		d = -d
	}
	return d
}

func subtreeMean(n *treeNode) float64 {
	if n == nil {
		return 0
	}
	if n.leaf {
		return n.value
	}
	return (subtreeMean(n.left) + subtreeMean(n.right)) / 2
}

// Score returns the positive-class probability; the review pipeline uses it
// for ranking ambiguous reviews.
func (bt *BoostedTrees) Score(x FeatureVector) float64 {
	score := bt.bias
	for _, t := range bt.trees {
		score += bt.shrinkage * t.eval(x)
	}
	return sigmoid(score)
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

func meanOf(r []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	s := 0.0
	for _, i := range idx {
		s += r[i]
	}
	return s / float64(len(idx))
}

func variance(r []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	m := meanOf(r, idx)
	s := 0.0
	for _, i := range idx {
		d := r[i] - m
		s += d * d
	}
	return s / float64(len(idx))
}
