package textproc

import "sort"

// reviewDictionary is the built-in vocabulary of app-review English: the
// words that occur in mobile-app reviews about function errors, plus general
// high-frequency English. It doubles as the spell-repair target dictionary
// (§3.2.1). App-specific vocabulary is injected per app via WithExtraWords.
var reviewDictionary = []string{
	// --- function-error core vocabulary ---
	"error", "errors", "bug", "bugs", "crash", "crashes", "crashed", "crashing",
	"fail", "fails", "failed", "failure", "broken", "broke", "freeze", "freezes",
	"frozen", "froze", "hang", "hangs", "hung", "stuck", "glitch", "glitches",
	"problem", "problems", "issue", "issues", "fault", "faults", "wrong",
	"exception", "defect", "defects", "corrupt", "corrupted",
	// --- app actions ---
	"open", "opens", "opened", "opening", "close", "closes", "closed", "closing",
	"launch", "launches", "launched", "launching", "start", "starts", "started",
	"starting", "stop", "stops", "stopped", "stopping", "install", "installed",
	"installing", "reinstall", "reinstalled", "uninstall", "uninstalled",
	"update", "updates", "updated", "updating", "upgrade", "upgraded",
	"download", "downloads", "downloaded", "downloading", "upload", "uploads",
	"uploaded", "uploading", "sync", "syncs", "synced", "syncing", "backup",
	"restore", "restored", "load", "loads", "loaded", "loading", "reload",
	"save", "saves", "saved", "saving", "delete", "deletes", "deleted",
	"deleting", "remove", "removed", "move", "moves", "moved", "moving",
	"send", "sends", "sent", "sending", "receive", "receives", "received",
	"receiving", "fetch", "fetches", "fetched", "fetching", "refresh",
	"refreshed", "connect", "connects", "connected", "connecting",
	"disconnect", "disconnected", "login", "logout", "register", "registered",
	"registering", "registration", "sign", "signin", "signup", "verify",
	"verified", "search", "searches", "searched", "searching", "find", "finds",
	"found", "finding", "play", "plays", "played", "playing", "pause", "paused",
	"record", "records", "recorded", "recording", "scroll", "scrolls",
	"scrolled", "scrolling", "swipe", "swiped", "tap", "taps", "tapped",
	"click", "clicks", "clicked", "clicking", "press", "pressed", "type",
	"typed", "typing", "write", "writes", "wrote", "writing", "read", "reads",
	"reading", "edit", "edits", "edited", "editing", "share", "shared",
	"sharing", "post", "posts", "posted", "posting", "reply", "replied",
	"replies", "forward", "forwarded", "import", "imported", "export",
	"exported", "browse", "browsed", "stream", "streamed", "notify",
	"notified", "show", "shows", "showed", "shown", "showing", "display",
	"displays", "displayed", "render", "rendered", "take", "takes", "took",
	"taken", "taking", "add", "adds", "added", "adding", "create", "created",
	"creating", "change", "changes", "changed", "changing", "switch",
	"switched", "select", "selected", "choose", "chose", "chosen", "view",
	"viewed", "watch", "watched", "listen", "listened", "check", "checked",
	"checking", "enable", "enabled", "disable", "disabled", "turn", "turned",
	"use", "uses", "used", "using", "work", "works", "worked", "working",
	"run", "runs", "ran", "running", "try", "tries", "tried", "trying",
	"keep", "keeps", "kept", "keeping", "get", "gets", "got", "getting",
	"make", "makes", "made", "making", "go", "goes", "went", "gone", "going",
	"come", "comes", "came", "coming", "see", "sees", "saw", "seen", "seeing",
	"say", "says", "said", "saying", "tell", "tells", "told", "need", "needs",
	"needed", "want", "wants", "wanted", "help", "helps", "helped", "fix",
	"fixes", "fixed", "fixing", "solve", "solved", "support", "supported",
	"respond", "responds", "responded", "appear", "appears", "appeared",
	"disappear", "disappears", "disappeared", "happen", "happens", "happened",
	"return", "returns", "returned", "poll", "polls", "polling", "flip",
	"flipped", "rotate", "rotated", "zoom", "resize", "cache", "cached",
	"log", "logs", "logged", "logging", "track", "tracked", "locate",
	"located", "navigate", "navigated", "transfer", "transferred",
	// --- nouns: app domain ---
	"app", "apps", "application", "applications", "phone", "phones", "tablet",
	"tablets", "device", "devices", "screen", "screens", "button", "buttons",
	"menu", "menus", "page", "pages", "tab", "tabs", "list", "lists", "view",
	"window", "windows", "widget", "widgets", "icon", "icons", "keyboard",
	"notification", "notifications", "message", "messages", "mail", "email",
	"emails", "inbox", "outbox", "draft", "drafts", "folder", "folders",
	"account", "accounts", "password", "passwords", "username", "user",
	"users", "profile", "profiles", "setting", "settings", "option", "options",
	"preference", "preferences", "feature", "features", "version", "versions",
	"release", "releases", "file", "files", "photo", "photos", "picture",
	"pictures", "image", "images", "video", "videos", "audio", "music",
	"song", "songs", "podcast", "podcasts", "episode", "episodes", "camera",
	"gallery", "album", "albums", "contact", "contacts", "call", "calls",
	"text", "texts", "sms", "mms", "chat", "chats", "conversation",
	"conversations", "group", "groups", "server", "servers", "network",
	"internet", "wifi", "data", "connection", "connections", "signal",
	"bluetooth", "gps", "location", "locations", "map", "maps", "direction",
	"directions", "battery", "memory", "storage", "card", "cards", "space",
	"cloud", "link", "links", "url", "site", "sites", "website", "websites",
	"browser", "feed", "feeds", "article", "articles", "news", "story",
	"stories", "comment", "comments", "review", "reviews", "rating", "ratings",
	"star", "stars", "post", "tweet", "tweets", "timeline", "stream",
	"certificate", "certificates", "key", "keys", "encryption", "security",
	"permission", "permissions", "backup", "backups", "widget", "theme",
	"themes", "font", "fonts", "language", "languages", "sound", "sounds",
	"volume", "alarm", "alarms", "clock", "calendar", "event", "events",
	"reminder", "reminders", "task", "tasks", "note", "notes", "book",
	"books", "reader", "library", "chapter", "chapters", "puzzle", "puzzles",
	"crossword", "crosswords", "game", "games", "level", "levels", "score",
	"scores", "stat", "stats", "statistic", "statistics", "cache", "database",
	"log", "trace", "socket", "pointer", "null", "timeout", "session",
	"sessions", "token", "widget", "layout", "attachment", "attachments",
	"signature", "signatures", "filter", "filters", "label", "labels",
	"archive", "trash", "spam", "deck", "decks", "flashcard", "flashcards",
	"route", "routes", "bus", "buses", "stop", "stops", "arrival", "arrivals",
	"torrent", "torrents", "lockscreen", "lock", "unlock", "pin", "gesture",
	"site", "blog", "blogs", "media", "player", "subtitle", "subtitles",
	"playlist", "playlists", "queue", "download", "downloads", "upload",
	"uploads", "geocache", "geocaches", "compass", "waypoint", "waypoints",
	// --- adjectives/adverbs common in reviews ---
	"good", "great", "nice", "awesome", "amazing", "excellent", "perfect",
	"best", "better", "bad", "worse", "worst", "terrible", "horrible",
	"awful", "useless", "annoying", "frustrating", "slow", "slower", "fast",
	"faster", "quick", "easy", "hard", "difficult", "simple", "clean",
	"beautiful", "ugly", "new", "newer", "old", "older", "latest", "recent",
	"last", "first", "previous", "current", "random", "blank", "black",
	"white", "empty", "full", "free", "paid", "premium", "stable", "unstable",
	"responsive", "unresponsive", "unusable", "unable", "impossible",
	"possible", "every", "each", "all", "some", "many", "much", "more",
	"most", "less", "least", "few", "several", "other", "another", "same",
	"different", "certain", "whole", "entire", "big", "small", "long",
	"short", "high", "low", "dark", "light", "wrong", "right", "correct",
	"incorrect", "missing", "available", "unavailable", "visible",
	"invisible", "upside", "down",
	// --- function words ---
	"the", "a", "an", "and", "or", "but", "nor", "so", "yet", "if", "then",
	"else", "when", "whenever", "while", "whereas", "because", "since",
	"although", "though", "however", "nevertheless", "anymore", "also",
	"too", "very", "really", "just", "only", "even", "still", "again",
	"always", "never", "sometimes", "often", "usually", "rarely",
	"constantly", "randomly", "suddenly", "recently", "currently", "now",
	"today", "yesterday", "before", "after", "until", "once", "twice",
	"here", "there", "where", "why", "how", "what", "which", "who", "whom",
	"whose", "this", "that", "these", "those", "it", "its", "i", "me", "my",
	"mine", "you", "your", "yours", "he", "him", "his", "she", "her", "hers",
	"we", "us", "our", "ours", "they", "them", "their", "theirs", "myself",
	"itself", "is", "am", "are", "was", "were", "be", "been", "being",
	"do", "does", "did", "doing", "done", "have", "has", "had", "having",
	"will", "would", "shall", "should", "can", "could", "may", "might",
	"must", "wont", "cant", "dont", "doesnt", "didnt", "isnt", "wasnt",
	"arent", "werent", "not", "no", "none", "nothing", "nobody", "nowhere",
	"neither", "never", "without", "in", "on", "at", "to", "of", "for",
	"from", "with", "by", "about", "into", "onto", "out", "off", "over",
	"under", "up", "down", "through", "between", "during", "against",
	"across", "behind", "beyond", "within", "per", "via", "please", "thanks",
	"thank", "sorry", "hello", "ok", "okay", "fine", "well", "anyway",
	"otherwise", "instead", "maybe", "perhaps", "probably", "definitely",
	"actually", "literally", "basically", "especially", "time", "times",
	"day", "days", "week", "weeks", "month", "months", "year", "years",
	"hour", "hours", "minute", "minutes", "second", "seconds", "moment",
	"middle", "end", "beginning", "top", "bottom", "left", "right", "side",
	"back", "front", "inside", "outside", "thing", "things", "stuff", "way",
	"ways", "lot", "lots", "bit", "part", "parts", "everything", "anything",
	"something", "someone", "anyone", "everyone", "people", "developer",
	"developers", "dev", "devs", "team", "company", "google", "android",
	"samsung", "nexus", "pixel", "xiaomi", "huawei", "galaxy", "note",
	"solution", "solutions",
}

// reviewAbbreviations maps common review shorthand to its expansion
// (§3.2.1: `"pls" to "please", "pic" to "picture"`).
var reviewAbbreviations = map[string]string{
	"pls":    "please",
	"plz":    "please",
	"pic":    "picture",
	"pics":   "pictures",
	"msg":    "message",
	"msgs":   "messages",
	"txt":    "text",
	"u":      "you",
	"ur":     "your",
	"r":      "are",
	"thx":    "thanks",
	"ty":     "thanks",
	"bc":     "because",
	"cuz":    "because",
	"coz":    "because",
	"w":      "with",
	"w/o":    "without",
	"app":    "app", // identity: keep "app" stable even though short
	"vid":    "video",
	"vids":   "videos",
	"fav":    "favorite",
	"favs":   "favorites",
	"notif":  "notification",
	"notifs": "notifications",
	"acct":   "account",
	"pw":     "password",
	"pwd":    "password",
	"wp":     "wordpress",
	"dl":     "download",
	"ppl":    "people",
	"rec":    "recommend",
	"esp":    "especially",
	"prob":   "problem",
	"probs":  "problems",
	"sec":    "second",
	"secs":   "seconds",
	"min":    "minute",
	"mins":   "minutes",
	"hr":     "hour",
	"hrs":    "hours",
	"config": "configuration",
	"sync":   "sync",
	"info":   "information",
}

// Stopwords is the stopword set used for topic-word extraction and method
// name conversion (e.g. removing "on" from lifecycle methods, §4.1.1).
var Stopwords = map[string]struct{}{
	"a": {}, "an": {}, "the": {}, "and": {}, "or": {}, "but": {}, "if": {},
	"of": {}, "at": {}, "by": {}, "for": {}, "with": {}, "about": {},
	"to": {}, "from": {}, "in": {}, "on": {}, "up": {}, "down": {},
	"out": {}, "off": {}, "over": {}, "under": {}, "again": {}, "then": {},
	"once": {}, "here": {}, "there": {}, "all": {}, "any": {}, "both": {},
	"each": {}, "few": {}, "more": {}, "most": {}, "some": {}, "such": {},
	"only": {}, "own": {}, "same": {}, "so": {}, "than": {}, "too": {},
	"very": {}, "can": {}, "will": {}, "just": {}, "is": {}, "am": {},
	"are": {}, "was": {}, "were": {}, "be": {}, "been": {}, "being": {},
	"do": {}, "does": {}, "did": {}, "doing": {}, "have": {}, "has": {},
	"had": {}, "having": {}, "i": {}, "me": {}, "my": {}, "we": {}, "our": {},
	"you": {}, "your": {}, "he": {}, "him": {}, "his": {}, "she": {},
	"her": {}, "it": {}, "its": {}, "they": {}, "them": {}, "their": {},
	"this": {}, "that": {}, "these": {}, "those": {}, "as": {}, "until": {},
	"while": {}, "when": {}, "where": {}, "why": {}, "how": {}, "what": {},
	"which": {}, "who": {}, "whom": {}, "no": {}, "nor": {}, "not": {},
	"s": {}, "t": {}, "don": {}, "now": {}, "get": {}, "gets": {},
}

// IsStopword reports whether the lower-cased word is a stopword.
func IsStopword(word string) bool {
	_, ok := Stopwords[word]
	return ok
}

// DictionaryList returns the built-in review-English dictionary in sorted
// order, for interner construction.
func DictionaryList() []string {
	out := append([]string(nil), reviewDictionary...)
	sort.Strings(out)
	// The raw word list carries a few duplicates; return each word once.
	dedup := out[:0]
	for i, w := range out {
		if i == 0 || w != out[i-1] {
			dedup = append(dedup, w)
		}
	}
	return dedup
}

// StopwordList returns the stopword set in sorted order, for interner
// construction.
func StopwordList() []string {
	out := make([]string, 0, len(Stopwords))
	for w := range Stopwords {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// AbbreviationList returns the abbreviations and their expansions (both
// sides, deduplicated) in sorted order, for interner construction.
func AbbreviationList() []string {
	seen := make(map[string]struct{}, 2*len(reviewAbbreviations))
	out := make([]string, 0, 2*len(reviewAbbreviations))
	for abbr, exp := range reviewAbbreviations {
		for _, w := range [2]string{abbr, exp} {
			if _, dup := seen[w]; !dup {
				seen[w] = struct{}{}
				out = append(out, w)
			}
		}
	}
	sort.Strings(out)
	return out
}
