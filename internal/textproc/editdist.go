package textproc

// Levenshtein returns the edit distance between a and b: the minimum number
// of single-character insertions, deletions, and substitutions needed to turn
// a into b. The paper uses edit distance to repair typos in reviews against a
// dictionary (§3.2.1).
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	// Single-row dynamic program.
	prev := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur := prev[0]
		prev[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			next := min3(prev[j]+1, prev[j-1]+1, cur+cost)
			cur = prev[j]
			prev[j] = next
		}
	}
	return prev[len(b)]
}

// LevenshteinAtMost reports whether Levenshtein(a,b) <= k, with early exit.
// It is what the spell repairer actually calls in its inner loop.
func LevenshteinAtMost(a, b string, k int) bool {
	la, lb := len(a), len(b)
	if la-lb > k || lb-la > k {
		return false
	}
	return Levenshtein(a, b) <= k
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
