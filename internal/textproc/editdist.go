package textproc

// Levenshtein returns the edit distance between a and b: the minimum number
// of single-character insertions, deletions, and substitutions needed to turn
// a into b. The paper uses edit distance to repair typos in reviews against a
// dictionary (§3.2.1).
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	// Single-row dynamic program.
	prev := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur := prev[0]
		prev[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			next := min3(prev[j]+1, prev[j-1]+1, cur+cost)
			cur = prev[j]
			prev[j] = next
		}
	}
	return prev[len(b)]
}

// LevenshteinAtMost reports whether Levenshtein(a,b) <= k, with early exit.
func LevenshteinAtMost(a, b string, k int) bool {
	return LevenshteinBounded(a, b, k) <= k
}

// LevenshteinBounded returns the exact edit distance when it is <= k and
// k+1 otherwise. It is what the spell repairer calls in its inner loop: the
// repair threshold is 1 in practice, where a direct one-edit check is O(n)
// instead of the full O(n·m) dynamic program, and larger thresholds use a
// banded DP that only visits the 2k+1 diagonals that can stay within k.
func LevenshteinBounded(a, b string, k int) int {
	la, lb := len(a), len(b)
	diff := la - lb
	if diff < 0 {
		diff = -diff
	}
	if k < 0 || diff > k {
		return k + 1
	}
	if a == b {
		return 0
	}
	if la == 0 || lb == 0 {
		return la + lb // within k: the length gap was checked above
	}
	if k == 1 {
		return oneEditDistance(a, b)
	}
	// Banded DP: cell (i,j) with |i-j| > k can never end within k, so only
	// the band j in [i-k, i+k] is computed.
	const inf = 1 << 30
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb && j <= k; j++ {
		prev[j] = j
	}
	for j := k + 1; j <= lb; j++ {
		prev[j] = inf
	}
	for i := 1; i <= la; i++ {
		lo, hi := i-k, i+k
		if lo < 1 {
			lo = 1
		}
		if hi > lb {
			hi = lb
		}
		rowMin := inf
		if lo > 1 {
			cur[lo-1] = inf
		} else {
			cur[0] = i
			rowMin = i // column 0 is inside the band when i <= k
		}
		for j := lo; j <= hi; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			d := prev[j-1] + cost
			if prev[j]+1 < d {
				d = prev[j] + 1
			}
			if cur[j-1]+1 < d {
				d = cur[j-1] + 1
			}
			cur[j] = d
			if d < rowMin {
				rowMin = d
			}
		}
		if hi < lb {
			cur[hi+1] = inf
		}
		if rowMin > k {
			return k + 1
		}
		prev, cur = cur, prev
	}
	if prev[lb] > k {
		return k + 1
	}
	return prev[lb]
}

// oneEditDistance returns the edit distance of two unequal strings whose
// lengths differ by at most 1, capped at 2: 1 when a single substitution,
// insertion, or deletion separates them, 2 otherwise.
func oneEditDistance(a, b string) int {
	if len(a) == len(b) {
		mismatches := 0
		for i := 0; i < len(a); i++ {
			if a[i] != b[i] {
				mismatches++
				if mismatches > 1 {
					return 2
				}
			}
		}
		return 1 // a != b, so exactly one substitution
	}
	long, short := a, b
	if len(long) < len(short) {
		long, short = short, long
	}
	// One deletion from long must yield short: skip the first mismatch.
	i := 0
	for i < len(short) && long[i] == short[i] {
		i++
	}
	for j := i; j < len(short); j++ {
		if long[j+1] != short[j] {
			return 2
		}
	}
	return 1
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
