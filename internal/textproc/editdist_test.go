package textproc

import (
	"math/rand"
	"testing"
)

func TestLevenshteinBasics(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"send", "send", 0},
		{"recieve", "receive", 2},
		{"sned", "send", 2},
		{"attch", "attach", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestLevenshteinBoundedMatchesFull is the property test of the banded and
// one-edit fast paths: for random string pairs and every small threshold,
// the bounded distance must equal the full DP when the true distance is
// within k, and report k+1 otherwise.
func TestLevenshteinBoundedMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	alphabet := "abcdef"
	randWord := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return string(b)
	}
	for trial := 0; trial < 2000; trial++ {
		a := randWord(rng.Intn(10))
		b := randWord(rng.Intn(10))
		full := Levenshtein(a, b)
		for k := 0; k <= 4; k++ {
			got := LevenshteinBounded(a, b, k)
			want := full
			if full > k {
				want = k + 1
			}
			if got != want {
				t.Fatalf("LevenshteinBounded(%q,%q,%d) = %d, want %d (full %d)",
					a, b, k, got, want, full)
			}
			if atMost := LevenshteinAtMost(a, b, k); atMost != (full <= k) {
				t.Fatalf("LevenshteinAtMost(%q,%q,%d) = %v, want %v", a, b, k, atMost, full <= k)
			}
		}
	}
}

// TestLevenshteinBoundedMutations checks the k=1 fast path against words
// derived by a single real edit, where the answer is known by construction.
func TestLevenshteinBoundedMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	alphabet := "abcdefghij"
	base := []string{"message", "attachment", "download", "notification", "sync"}
	for trial := 0; trial < 500; trial++ {
		w := base[rng.Intn(len(base))]
		bs := []byte(w)
		switch rng.Intn(3) {
		case 0: // substitution
			i := rng.Intn(len(bs))
			bs[i] = alphabet[rng.Intn(len(alphabet))]
		case 1: // deletion
			i := rng.Intn(len(bs))
			bs = append(bs[:i], bs[i+1:]...)
		case 2: // insertion
			i := rng.Intn(len(bs) + 1)
			bs = append(bs[:i], append([]byte{alphabet[rng.Intn(len(alphabet))]}, bs[i:]...)...)
		}
		mut := string(bs)
		want := Levenshtein(w, mut) // 0 when the edit was a no-op substitution
		if got := LevenshteinBounded(w, mut, 1); got != want {
			t.Fatalf("LevenshteinBounded(%q,%q,1) = %d, want %d", w, mut, got, want)
		}
	}
}
