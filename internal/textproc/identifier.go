package textproc

import (
	"strings"
	"unicode"
)

// SplitIdentifier splits a source-code identifier into lower-cased words.
// It handles camelCase ("getEmail" → ["get","email"]), PascalCase
// ("MessageListFragment" → ["message","list","fragment"]), snake_case
// ("quoted_text_edit" → ["quoted","text","edit"]), digits ("k9mail" →
// ["k9mail"] keeps digit-joined runs; "button2" → ["button","2"] splits
// trailing digits), and acronym runs ("HTTPClient" → ["http","client"]).
// The paper uses this both for method-name → verb-phrase conversion (§4.1.1)
// and for widget-id label extraction (§3.3.2).
func SplitIdentifier(id string) []string {
	if id == "" {
		return nil
	}
	var words []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			words = append(words, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	runes := []rune(id)
	for i, r := range runes {
		switch {
		case r == '_' || r == '-' || r == '$' || r == '.' || r == '/' || r == ' ':
			flush()
		case unicode.IsUpper(r):
			// Boundary before an upper-case letter unless we are inside an
			// acronym run that continues ("HTTPClient": split before 'C').
			if cur.Len() > 0 {
				prevUpper := i > 0 && unicode.IsUpper(runes[i-1])
				nextLower := i+1 < len(runes) && unicode.IsLower(runes[i+1])
				if !prevUpper || nextLower {
					flush()
				}
			}
			cur.WriteRune(unicode.ToLower(r))
		case unicode.IsDigit(r):
			// Split a digit run off unless the preceding word is a single
			// letter (keeps "k9" together).
			if cur.Len() > 1 && !unicode.IsDigit(runes[i-1]) {
				flush()
			}
			cur.WriteRune(r)
		default:
			if cur.Len() > 0 && unicode.IsDigit(runes[i-1]) && cur.Len() > 2 {
				flush()
			}
			cur.WriteRune(r)
		}
	}
	flush()
	return words
}

// uiAbbreviations maps the 39 UI-related abbreviations the paper collected
// from Android naming-convention guides (§3.3.2, "abbreviation matching
// method") to their raw words.
var uiAbbreviations = map[string]string{
	"btn":     "button",
	"rb":      "radio button",
	"cb":      "checkbox",
	"chk":     "checkbox",
	"txt":     "text",
	"tv":      "text view",
	"et":      "edit text",
	"edt":     "edit text",
	"img":     "image",
	"iv":      "image view",
	"ib":      "image button",
	"lbl":     "label",
	"lv":      "list view",
	"rv":      "recycler view",
	"gv":      "grid view",
	"sv":      "scroll view",
	"sp":      "spinner",
	"spn":     "spinner",
	"pb":      "progress bar",
	"prog":    "progress",
	"sb":      "seek bar",
	"sw":      "switch",
	"tb":      "toggle button",
	"rg":      "radio group",
	"rl":      "relative layout",
	"ll":      "linear layout",
	"fl":      "frame layout",
	"cl":      "constraint layout",
	"tl":      "table layout",
	"vp":      "view pager",
	"wv":      "web view",
	"fab":     "floating action button",
	"bg":      "background",
	"fg":      "foreground",
	"ic":      "icon",
	"nav":     "navigation",
	"toolbar": "toolbar",
	"dlg":     "dialog",
	"frag":    "fragment",
	"act":     "activity",
	"pwd":     "password",
	"num":     "number",
	"tgl":     "toggle",
}

// ExpandUIAbbreviation replaces a widget-id word with its raw UI word(s) if
// it is a known UI abbreviation; otherwise it returns the word unchanged.
func ExpandUIAbbreviation(word string) string {
	if exp, ok := uiAbbreviations[word]; ok {
		return exp
	}
	return word
}

// ExpandUIWords expands every abbreviation in a widget-id word list,
// flattening multi-word expansions ("rb" → "radio", "button").
func ExpandUIWords(words []string) []string {
	out := make([]string, 0, len(words))
	for _, w := range words {
		exp := ExpandUIAbbreviation(w)
		if exp == w {
			out = append(out, w)
			continue
		}
		out = append(out, strings.Fields(exp)...)
	}
	return out
}

// UIAbbreviationCount returns the number of UI abbreviations known; the
// paper reports 39 (§3.3.2).
func UIAbbreviationCount() int { return len(uiAbbreviations) }
