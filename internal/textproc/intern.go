package textproc

import "encoding/binary"

// Interner is an immutable string → ID symbol table over the pipeline's
// closed vocabulary (spell-repair dictionary, POS lexicon, stopwords,
// abbreviations, embedding lexicon). Token IDs let downstream stages index
// flat arrays instead of hashing strings, and let phrase-level caches key on
// compact binary IDs instead of joined strings.
//
// An Interner is built once (NewInterner) and read-only afterwards, so it is
// safe for unsynchronized concurrent use.
type Interner struct {
	ids   map[string]uint32
	words []string
	flags []uint16
}

// Vocabulary membership flags, one bit per source table.
const (
	SymStopword uint16 = 1 << iota
	SymDictionary
	SymAbbreviation
	SymPOSLexicon
	SymEmbedding
)

// InternVocab is one vocabulary source fed to NewInterner: its words and the
// membership flag they carry.
type InternVocab struct {
	Words []string
	Flags uint16
}

// NewInterner builds the symbol table from the union of the given
// vocabularies. Words appearing in several sources get one ID with the OR of
// their flags. IDs are dense, assigned in first-seen order.
func NewInterner(vocabs ...InternVocab) *Interner {
	total := 0
	for _, v := range vocabs {
		total += len(v.Words)
	}
	in := &Interner{
		ids:   make(map[string]uint32, total),
		words: make([]string, 0, total),
		flags: make([]uint16, 0, total),
	}
	for _, v := range vocabs {
		for _, w := range v.Words {
			if id, ok := in.ids[w]; ok {
				in.flags[id] |= v.Flags
				continue
			}
			id := uint32(len(in.words))
			in.ids[w] = id
			in.words = append(in.words, w)
			in.flags = append(in.flags, v.Flags)
		}
	}
	return in
}

// Size returns the number of interned words.
func (in *Interner) Size() int { return len(in.words) }

// ID returns the dense ID of a word and whether it is interned.
func (in *Interner) ID(word string) (uint32, bool) {
	id, ok := in.ids[word]
	return id, ok
}

// Word returns the word behind an ID (panics on out-of-range IDs, like a
// slice index).
func (in *Interner) Word(id uint32) string { return in.words[id] }

// Flags returns the vocabulary-membership flags of an ID.
func (in *Interner) Flags(id uint32) uint16 { return in.flags[id] }

// Annotate stamps every Word/Number token with its interner handle:
// Token.ID is the dense ID plus one, so zero keeps meaning "unknown or not
// annotated". One map probe here replaces the per-stage string hashing
// downstream (lexicon tag, stopword test, dictionary test).
func (in *Interner) Annotate(toks []Token) {
	for i := range toks {
		if toks[i].Kind != Word && toks[i].Kind != Number {
			continue
		}
		if id, ok := in.ids[toks[i].Lower]; ok {
			toks[i].ID = id + 1
		} else {
			toks[i].ID = 0
		}
	}
}

// IsStop reports whether a token annotated by this interner is a stopword,
// without hashing its text. Unannotated tokens fall back to the map test.
func (in *Interner) IsStop(t Token) bool {
	if t.ID != 0 {
		return in.flags[t.ID-1]&SymStopword != 0
	}
	return IsStopword(t.Lower)
}

// Export returns the symbol table in ID order: the interned words and their
// flags, parallel slices suitable for serialization. The slices alias the
// interner's internals; callers must not mutate them.
func (in *Interner) Export() (words []string, flags []uint16) {
	return in.words, in.flags
}

// NewInternerFromTable rebuilds an interner from an Export-style table,
// preserving IDs (words[i] gets ID i). It is the deserialization twin of
// Export: NewInternerFromTable(in.Export()) is equivalent to in.
func NewInternerFromTable(words []string, flags []uint16) *Interner {
	in := &Interner{
		ids:   make(map[string]uint32, len(words)),
		words: words,
		flags: flags,
	}
	for i, w := range words {
		in.ids[w] = uint32(i)
	}
	return in
}

// AppendIDs appends the 4-byte little-endian IDs of the words to dst and
// reports whether every word was interned. When any word is unknown the
// caller must fall back to a string key; dst may hold a partial prefix.
func (in *Interner) AppendIDs(dst []byte, words []string) ([]byte, bool) {
	for _, w := range words {
		id, ok := in.ids[w]
		if !ok {
			return dst, false
		}
		dst = binary.LittleEndian.AppendUint32(dst, id)
	}
	return dst, true
}
