package textproc

import (
	"strings"
	"testing"
)

func testInterner() *Interner {
	return NewInterner(
		InternVocab{Words: []string{"the", "a", "not"}, Flags: SymStopword},
		InternVocab{Words: []string{"send", "message", "the"}, Flags: SymDictionary},
	)
}

func TestInternerIDsAndFlags(t *testing.T) {
	in := testInterner()
	if got := in.Size(); got != 5 {
		t.Fatalf("Size() = %d, want 5 (union of vocabularies)", got)
	}
	// Dense first-seen IDs.
	for i, w := range []string{"the", "a", "not", "send", "message"} {
		id, ok := in.ID(w)
		if !ok || id != uint32(i) {
			t.Errorf("ID(%q) = %d,%v, want %d,true", w, id, ok, i)
		}
		if in.Word(id) != w {
			t.Errorf("Word(%d) = %q, want %q", id, in.Word(id), w)
		}
	}
	if _, ok := in.ID("unknown"); ok {
		t.Error("ID of uninterned word reported ok")
	}
	// Duplicate words OR their flags.
	id, _ := in.ID("the")
	if f := in.Flags(id); f != SymStopword|SymDictionary {
		t.Errorf("Flags(the) = %b, want stopword|dictionary", f)
	}
	id, _ = in.ID("send")
	if f := in.Flags(id); f != SymDictionary {
		t.Errorf("Flags(send) = %b, want dictionary only", f)
	}
}

func TestInternerAnnotate(t *testing.T) {
	in := testInterner()
	toks := Tokenize("send the zorp!")
	in.Annotate(toks)
	wantIDs := make(map[string]uint32)
	for _, w := range []string{"send", "the"} {
		id, _ := in.ID(w)
		wantIDs[w] = id + 1
	}
	for _, tok := range toks {
		switch tok.Lower {
		case "send", "the":
			if tok.ID != wantIDs[tok.Lower] {
				t.Errorf("token %q ID = %d, want %d", tok.Lower, tok.ID, wantIDs[tok.Lower])
			}
		case "zorp":
			if tok.ID != 0 {
				t.Errorf("unknown word got ID %d, want 0", tok.ID)
			}
		case "!":
			if tok.ID != 0 {
				t.Errorf("punct token got ID %d, want 0", tok.ID)
			}
		}
	}
}

func TestInternerIsStop(t *testing.T) {
	in := testInterner()
	toks := Tokenize("the message")
	in.Annotate(toks)
	if !in.IsStop(toks[0]) {
		t.Error("annotated stopword not reported as stop")
	}
	if in.IsStop(toks[1]) {
		t.Error("annotated non-stopword reported as stop")
	}
	// Unannotated tokens fall back to the global stopword table.
	plain := Tokenize("the")
	if !in.IsStop(plain[0]) {
		t.Error("unannotated stopword fallback failed")
	}
}

func TestInternerAppendIDs(t *testing.T) {
	in := testInterner()
	key, ok := in.AppendIDs(nil, []string{"send", "message"})
	if !ok {
		t.Fatal("AppendIDs over interned words reported unknown")
	}
	if len(key) != 8 {
		t.Fatalf("key length = %d, want 8 (two 4-byte IDs)", len(key))
	}
	key2, ok := in.AppendIDs(nil, []string{"message", "send"})
	if !ok || string(key) == string(key2) {
		t.Error("order-swapped phrases must produce distinct keys")
	}
	if _, ok := in.AppendIDs(nil, []string{"send", "zorp"}); ok {
		t.Error("AppendIDs with an uninterned word reported ok")
	}
}

func TestDefaultVocabAccessors(t *testing.T) {
	for name, words := range map[string][]string{
		"DictionaryList":   DictionaryList(),
		"StopwordList":     StopwordList(),
		"AbbreviationList": AbbreviationList(),
	} {
		if len(words) == 0 {
			t.Errorf("%s is empty", name)
		}
		for i := 1; i < len(words); i++ {
			if strings.Compare(words[i-1], words[i]) >= 0 {
				t.Errorf("%s not strictly sorted at %d: %q >= %q", name, i, words[i-1], words[i])
				break
			}
		}
	}
}

func TestInternerExportRoundTrip(t *testing.T) {
	orig := NewInterner(
		InternVocab{Words: []string{"email", "crash", "the"}, Flags: SymDictionary},
		InternVocab{Words: []string{"the", "a"}, Flags: SymStopword},
	)
	words, flags := orig.Export()
	if len(words) != orig.Size() || len(flags) != orig.Size() {
		t.Fatalf("Export shapes %d/%d for size %d", len(words), len(flags), orig.Size())
	}
	re := NewInternerFromTable(words, flags)
	if re.Size() != orig.Size() {
		t.Fatalf("rebuilt size %d, want %d", re.Size(), orig.Size())
	}
	for _, w := range []string{"email", "crash", "the", "a", "missing"} {
		oid, ook := orig.ID(w)
		rid, rok := re.ID(w)
		if oid != rid || ook != rok {
			t.Fatalf("ID(%q): rebuilt %d/%v, orig %d/%v", w, rid, rok, oid, ook)
		}
		if !ook {
			continue
		}
		if re.Word(rid) != orig.Word(oid) || re.Flags(rid) != orig.Flags(oid) {
			t.Fatalf("word/flags mismatch for %q", w)
		}
	}
	// "the" must carry both membership flags after the rebuild.
	id, _ := re.ID("the")
	if re.Flags(id)&SymStopword == 0 || re.Flags(id)&SymDictionary == 0 {
		t.Fatal("merged flags lost in round trip")
	}
}
