package textproc

import (
	"sort"
	"strings"
	"sync"
)

// Normalizer repairs typos and expands abbreviations in review tokens, per
// §3.2.1: "To remove typos, we leverage the edit distance to discover the
// correct word if the word is not found in the dictionary. Abbreviations are
// replaced with their original words."
type Normalizer struct {
	dict    map[string]struct{}
	byLen   map[int][]string // dictionary words grouped by length for candidate pruning
	abbrevs map[string]string
	maxDist int

	// Review vocabulary is heavily repeated, and a repair scan walks every
	// dictionary word of a near length, so repaired (and rejected) words are
	// memoized. Guarded because one Normalizer is shared across pool workers.
	// The memo is bounded by generation rotation: when the current map
	// reaches memoCap/2 entries it becomes the previous generation and a
	// fresh map takes over, so total residency never exceeds memoCap while
	// hot words survive rotation via promotion on lookup.
	mu   sync.RWMutex
	memo map[string]string
	prev map[string]string
}

// memoCap bounds the repair cache so adversarial input can't grow it without
// limit; review vocabularies are far smaller in practice.
const memoCap = 1 << 16

// NormalizerOption configures a Normalizer.
type NormalizerOption func(*Normalizer)

// WithMaxEditDistance sets the maximum edit distance allowed when repairing a
// typo (default 1; the paper's pipeline is conservative to avoid rewriting
// app-specific names).
func WithMaxEditDistance(d int) NormalizerOption {
	return func(n *Normalizer) { n.maxDist = d }
}

// WithExtraWords adds app-specific vocabulary (e.g. class-name words, app
// names) so that they are not "repaired" into dictionary words.
func WithExtraWords(words []string) NormalizerOption {
	return func(n *Normalizer) {
		for _, w := range words {
			n.addWord(strings.ToLower(w))
		}
	}
}

// NewNormalizer builds a Normalizer over the built-in review-English
// dictionary and abbreviation table.
func NewNormalizer(opts ...NormalizerOption) *Normalizer {
	n := &Normalizer{
		dict:    make(map[string]struct{}, len(reviewDictionary)),
		byLen:   make(map[int][]string),
		abbrevs: reviewAbbreviations,
		maxDist: 1,
		memo:    make(map[string]string),
	}
	for _, w := range reviewDictionary {
		n.addWord(w)
	}
	for _, opt := range opts {
		opt(n)
	}
	return n
}

func (n *Normalizer) addWord(w string) {
	if _, ok := n.dict[w]; ok {
		return
	}
	n.dict[w] = struct{}{}
	n.byLen[len(w)] = append(n.byLen[len(w)], w)
}

// Known reports whether a lower-cased word is in the dictionary.
func (n *Normalizer) Known(word string) bool {
	_, ok := n.dict[word]
	return ok
}

// ExpandAbbreviation returns the expansion of a review abbreviation
// ("pls" → "please") and whether one applied.
func (n *Normalizer) ExpandAbbreviation(word string) (string, bool) {
	exp, ok := n.abbrevs[word]
	return exp, ok
}

// NormalizeWord expands abbreviations then repairs typos. Words of three or
// fewer characters, numbers, and dictionary words pass through unchanged.
// The repaired word is chosen deterministically: minimal edit distance, then
// lexicographic order.
func (n *Normalizer) NormalizeWord(word string) string {
	w := strings.ToLower(word)
	if exp, ok := n.abbrevs[w]; ok {
		return exp
	}
	if len(w) <= 3 || n.Known(w) || !isAlphaWord(w) {
		return w
	}
	n.mu.RLock()
	repaired, ok := n.memo[w]
	if ok {
		n.mu.RUnlock()
		return repaired
	}
	repaired, ok = n.prev[w]
	n.mu.RUnlock()
	if ok {
		n.memoPut(w, repaired) // promote so hot words survive rotation
		return repaired
	}
	repaired = n.repair(w)
	n.memoPut(w, repaired)
	return repaired
}

// memoPut inserts (or promotes) a repair into the current memo generation,
// rotating generations when the current one fills.
func (n *Normalizer) memoPut(w, repaired string) {
	n.mu.Lock()
	if _, ok := n.memo[w]; !ok {
		if len(n.memo) >= memoCap/2 {
			n.prev = n.memo
			n.memo = make(map[string]string, memoCap/2)
		}
		n.memo[w] = repaired
	}
	n.mu.Unlock()
}

// MemoSize returns the number of memoized repairs currently resident across
// both generations; exported so serving can gauge the cache.
func (n *Normalizer) MemoSize() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.memo) + len(n.prev)
}

// repair finds the closest dictionary word within maxDist, or returns w
// unchanged when none qualifies.
func (n *Normalizer) repair(w string) string {
	best, bestDist := "", n.maxDist+1
	for l := len(w) - n.maxDist; l <= len(w)+n.maxDist; l++ {
		for _, cand := range n.byLen[l] {
			d := LevenshteinBounded(w, cand, n.maxDist)
			if d > n.maxDist {
				continue
			}
			if d < bestDist || (d == bestDist && cand < best) {
				best, bestDist = cand, d
			}
		}
	}
	if best != "" {
		return best
	}
	return w
}

// NormalizeSentence applies NormalizeWord to every word of a sentence and
// reassembles it with single spaces. Punctuation is preserved as separate
// tokens so downstream parsing still sees clause boundaries. When no word
// changes and the sentence already joins its tokens with single spaces, the
// input string is returned as-is without copying — the common case once a
// corpus has been normalized upstream.
func (n *Normalizer) NormalizeSentence(sentence string) string {
	sp := tokenScratch.Get().(*[]Token)
	toks := TokenizeInto((*sp)[:0], sentence)
	defer func() {
		*sp = toks[:0]
		tokenScratch.Put(sp)
	}()
	// canonical tracks whether every emitted part equals the original token
	// text at canonical single-space positions, proving output == input.
	canonical := true
	end := 0
	parts := make([]string, 0, len(toks))
	for i, t := range toks {
		var part string
		switch t.Kind {
		case Word:
			part = n.NormalizeWord(t.Lower)
		default:
			part = t.Text
		}
		parts = append(parts, part)
		if canonical {
			wantStart := 0
			if i > 0 {
				wantStart = end + 1
			}
			orig := sentence[t.Start : t.Start+len(t.Text)]
			if t.Start != wantStart || part != orig {
				canonical = false
			} else {
				end = t.Start + len(t.Text)
			}
		}
	}
	if canonical && end == len(sentence) {
		return sentence
	}
	return strings.Join(parts, " ")
}

func isAlphaWord(w string) bool {
	for i := 0; i < len(w); i++ {
		if !isLetter(w[i]) {
			return false
		}
	}
	return true
}

// DictionarySize returns the number of words the normalizer knows; useful
// for diagnostics and tests.
func (n *Normalizer) DictionarySize() int { return len(n.dict) }

// DictionaryWords returns a sorted copy of the dictionary, mainly for tests.
func (n *Normalizer) DictionaryWords() []string {
	out := make([]string, 0, len(n.dict))
	for w := range n.dict {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}
