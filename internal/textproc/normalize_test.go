package textproc

import (
	"fmt"
	"reflect"
	"testing"
)

func TestNormalizeWord(t *testing.T) {
	n := NewNormalizer()
	tests := []struct {
		name, in, want string
	}{
		{"abbrev pls", "pls", "please"},
		{"abbrev pic", "pic", "picture"},
		{"abbrev msg", "msg", "message"},
		// "crashs" repairs to "crash" (distance 1, lexicographically first
		// among the distance-1 candidates "crash"/"crashes").
		{"typo crashs", "crashs", "crash"},
		{"typo conect", "conect", "connect"},
		{"known word untouched", "crashes", "crashes"},
		{"short word untouched", "the", "the"},
		{"case folded", "CRASHES", "crashes"},
		{"number untouched", "404", "404"},
		{"unknown far word untouched", "qzxwvy", "qzxwvy"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := n.NormalizeWord(tt.in); got != tt.want {
				t.Errorf("NormalizeWord(%q) = %q, want %q", tt.in, got, tt.want)
			}
		})
	}
}

func TestNormalizeWordDeterministic(t *testing.T) {
	n := NewNormalizer()
	first := n.NormalizeWord("crashs")
	for i := 0; i < 10; i++ {
		if got := n.NormalizeWord("crashs"); got != first {
			t.Fatalf("non-deterministic repair: %q then %q", first, got)
		}
	}
}

func TestWithExtraWords(t *testing.T) {
	// Without the extra word, "twidere" would be eligible for repair;
	// with it, it must pass through.
	n := NewNormalizer(WithExtraWords([]string{"twidere", "wordpress"}))
	if !n.Known("twidere") {
		t.Fatal("extra word not registered")
	}
	if got := n.NormalizeWord("twidere"); got != "twidere" {
		t.Errorf("app word rewritten to %q", got)
	}
}

func TestNormalizeSentence(t *testing.T) {
	n := NewNormalizer()
	got := n.NormalizeSentence("pls fix the crashs")
	want := "please fix the crash"
	if got != want {
		t.Errorf("NormalizeSentence = %q, want %q", got, want)
	}
}

func TestNormalizerDictionary(t *testing.T) {
	n := NewNormalizer()
	if n.DictionarySize() < 500 {
		t.Errorf("dictionary suspiciously small: %d words", n.DictionarySize())
	}
	words := n.DictionaryWords()
	if len(words) != n.DictionarySize() {
		t.Errorf("DictionaryWords length %d != size %d", len(words), n.DictionarySize())
	}
}

func TestSplitIdentifier(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"getEmail", []string{"get", "email"}},
		{"MessageListFragment", []string{"message", "list", "fragment"}},
		{"quoted_text_edit", []string{"quoted", "text", "edit"}},
		{"show_password", []string{"show", "password"}},
		{"HTTPClient", []string{"http", "client"}},
		{"onCreate", []string{"on", "create"}},
		{"sendSMS", []string{"send", "sms"}},
		{"", nil},
		{"a", []string{"a"}},
		{"reply_to", []string{"reply", "to"}},
	}
	for _, tt := range tests {
		if got := SplitIdentifier(tt.in); !reflect.DeepEqual(got, tt.want) {
			t.Errorf("SplitIdentifier(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestExpandUIAbbreviation(t *testing.T) {
	if got := ExpandUIAbbreviation("btn"); got != "button" {
		t.Errorf("btn → %q", got)
	}
	if got := ExpandUIAbbreviation("rb"); got != "radio button" {
		t.Errorf("rb → %q", got)
	}
	if got := ExpandUIAbbreviation("password"); got != "password" {
		t.Errorf("non-abbrev changed: %q", got)
	}
}

func TestExpandUIWords(t *testing.T) {
	got := ExpandUIWords([]string{"login", "btn"})
	want := []string{"login", "button"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ExpandUIWords = %v, want %v", got, want)
	}
	got = ExpandUIWords([]string{"rb", "dark"})
	want = []string{"radio", "button", "dark"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ExpandUIWords multiword = %v, want %v", got, want)
	}
}

func TestUIAbbreviationCount(t *testing.T) {
	if UIAbbreviationCount() < 39 {
		t.Errorf("paper collected 39 UI abbreviations; have %d", UIAbbreviationCount())
	}
}

func TestIsStopword(t *testing.T) {
	for _, w := range []string{"the", "on", "is"} {
		if !IsStopword(w) {
			t.Errorf("%q should be a stopword", w)
		}
	}
	for _, w := range []string{"crash", "email", "button"} {
		if IsStopword(w) {
			t.Errorf("%q should not be a stopword", w)
		}
	}
}

func TestNormalizeSentenceFastPath(t *testing.T) {
	n := NewNormalizer()
	// Canonical input (all known words, single spaces) returns the identical
	// string value without re-joining.
	canonical := "cannot send the message"
	if got := n.NormalizeSentence(canonical); got != canonical {
		t.Fatalf("fast path changed canonical input: %q", got)
	}
	// Slow paths: repairs, extra spacing, and punctuation spacing still
	// normalize as before.
	for _, tt := range []struct{ in, want string }{
		{"cannot  send", "cannot send"}, // double space re-joins
		{"Cannot Send", "cannot send"},  // case folds
		{"canot send", "cant send"},     // typo repair (closest dictionary word)
		{"send it!", "send it !"},       // punct becomes its own token
	} {
		if got := n.NormalizeSentence(tt.in); got != tt.want {
			t.Errorf("NormalizeSentence(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestNormalizeMemoBounded(t *testing.T) {
	n := NewNormalizer()
	if n.MemoSize() != 0 {
		t.Fatalf("fresh normalizer MemoSize = %d, want 0", n.MemoSize())
	}
	n.NormalizeWord("canot")
	if n.MemoSize() != 1 {
		t.Errorf("after one repair MemoSize = %d, want 1", n.MemoSize())
	}
	// Memoized repair is stable.
	if a, b := n.NormalizeWord("canot"), n.NormalizeWord("canot"); a != b {
		t.Errorf("memoized repair unstable: %q vs %q", a, b)
	}
	// Exercise generation rotation directly and confirm residency never
	// exceeds the cap while promoted entries survive.
	for i := 0; i < memoCap; i++ {
		n.memoPut(fmt.Sprintf("wxyzq%05d", i), "w")
	}
	if size := n.MemoSize(); size > memoCap {
		t.Errorf("MemoSize = %d exceeds cap %d", size, memoCap)
	}
	// A prev-generation hit promotes into the current generation.
	n.memoPut("hotword", "hot")
	n.prev = n.memo
	n.memo = make(map[string]string)
	if got := n.NormalizeWord("hotword"); got != "hot" {
		t.Errorf("prev-generation lookup = %q, want %q", got, "hot")
	}
	n.mu.RLock()
	_, promoted := n.memo["hotword"]
	n.mu.RUnlock()
	if !promoted {
		t.Error("prev-generation hit was not promoted to the current generation")
	}
}
