package textproc

import (
	"reflect"
	"testing"
)

func TestNormalizeWord(t *testing.T) {
	n := NewNormalizer()
	tests := []struct {
		name, in, want string
	}{
		{"abbrev pls", "pls", "please"},
		{"abbrev pic", "pic", "picture"},
		{"abbrev msg", "msg", "message"},
		// "crashs" repairs to "crash" (distance 1, lexicographically first
		// among the distance-1 candidates "crash"/"crashes").
		{"typo crashs", "crashs", "crash"},
		{"typo conect", "conect", "connect"},
		{"known word untouched", "crashes", "crashes"},
		{"short word untouched", "the", "the"},
		{"case folded", "CRASHES", "crashes"},
		{"number untouched", "404", "404"},
		{"unknown far word untouched", "qzxwvy", "qzxwvy"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := n.NormalizeWord(tt.in); got != tt.want {
				t.Errorf("NormalizeWord(%q) = %q, want %q", tt.in, got, tt.want)
			}
		})
	}
}

func TestNormalizeWordDeterministic(t *testing.T) {
	n := NewNormalizer()
	first := n.NormalizeWord("crashs")
	for i := 0; i < 10; i++ {
		if got := n.NormalizeWord("crashs"); got != first {
			t.Fatalf("non-deterministic repair: %q then %q", first, got)
		}
	}
}

func TestWithExtraWords(t *testing.T) {
	// Without the extra word, "twidere" would be eligible for repair;
	// with it, it must pass through.
	n := NewNormalizer(WithExtraWords([]string{"twidere", "wordpress"}))
	if !n.Known("twidere") {
		t.Fatal("extra word not registered")
	}
	if got := n.NormalizeWord("twidere"); got != "twidere" {
		t.Errorf("app word rewritten to %q", got)
	}
}

func TestNormalizeSentence(t *testing.T) {
	n := NewNormalizer()
	got := n.NormalizeSentence("pls fix the crashs")
	want := "please fix the crash"
	if got != want {
		t.Errorf("NormalizeSentence = %q, want %q", got, want)
	}
}

func TestNormalizerDictionary(t *testing.T) {
	n := NewNormalizer()
	if n.DictionarySize() < 500 {
		t.Errorf("dictionary suspiciously small: %d words", n.DictionarySize())
	}
	words := n.DictionaryWords()
	if len(words) != n.DictionarySize() {
		t.Errorf("DictionaryWords length %d != size %d", len(words), n.DictionarySize())
	}
}

func TestSplitIdentifier(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"getEmail", []string{"get", "email"}},
		{"MessageListFragment", []string{"message", "list", "fragment"}},
		{"quoted_text_edit", []string{"quoted", "text", "edit"}},
		{"show_password", []string{"show", "password"}},
		{"HTTPClient", []string{"http", "client"}},
		{"onCreate", []string{"on", "create"}},
		{"sendSMS", []string{"send", "sms"}},
		{"", nil},
		{"a", []string{"a"}},
		{"reply_to", []string{"reply", "to"}},
	}
	for _, tt := range tests {
		if got := SplitIdentifier(tt.in); !reflect.DeepEqual(got, tt.want) {
			t.Errorf("SplitIdentifier(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestExpandUIAbbreviation(t *testing.T) {
	if got := ExpandUIAbbreviation("btn"); got != "button" {
		t.Errorf("btn → %q", got)
	}
	if got := ExpandUIAbbreviation("rb"); got != "radio button" {
		t.Errorf("rb → %q", got)
	}
	if got := ExpandUIAbbreviation("password"); got != "password" {
		t.Errorf("non-abbrev changed: %q", got)
	}
}

func TestExpandUIWords(t *testing.T) {
	got := ExpandUIWords([]string{"login", "btn"})
	want := []string{"login", "button"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ExpandUIWords = %v, want %v", got, want)
	}
	got = ExpandUIWords([]string{"rb", "dark"})
	want = []string{"radio", "button", "dark"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ExpandUIWords multiword = %v, want %v", got, want)
	}
}

func TestUIAbbreviationCount(t *testing.T) {
	if UIAbbreviationCount() < 39 {
		t.Errorf("paper collected 39 UI abbreviations; have %d", UIAbbreviationCount())
	}
}

func TestIsStopword(t *testing.T) {
	for _, w := range []string{"the", "on", "is"} {
		if !IsStopword(w) {
			t.Errorf("%q should be a stopword", w)
		}
	}
	for _, w := range []string{"crash", "email", "button"} {
		if IsStopword(w) {
			t.Errorf("%q should not be a stopword", w)
		}
	}
}
