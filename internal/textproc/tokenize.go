// Package textproc provides the low-level text processing primitives used by
// ReviewSolver's review-analysis pipeline (§3.2.1 of the paper): tokenization,
// sentence splitting, non-ASCII stripping, Levenshtein-based spell repair,
// abbreviation expansion, stopword filtering, and identifier (camelCase /
// snake_case) splitting.
//
// All functions in this package are deterministic and allocation-conscious;
// none of them retain references to their inputs.
package textproc

import (
	"strings"
	"sync"
	"unicode"
)

// Token is a single lexical unit of a sentence.
type Token struct {
	// Text is the surface form exactly as it appeared (after ASCII
	// normalization), preserving the original case.
	Text string
	// Lower is the lower-cased form, precomputed because nearly every
	// consumer needs it.
	Lower string
	// Start is the byte offset of the token in the source sentence.
	Start int
	// Kind classifies the token.
	Kind TokenKind
	// ID is the token's interner handle when an Interner annotated it:
	// dense ID + 1, with 0 meaning unknown or not annotated.
	ID uint32
}

// TokenKind classifies tokens by their lexical shape.
type TokenKind int

// Token kinds. Word covers alphabetic tokens (possibly with internal
// apostrophes, e.g. "doesn't"), Number covers digit runs and mixed
// alphanumerics such as "404" or "7.0", Punct covers punctuation runs, and
// Emoji covers characters outside ASCII that survived normalization.
const (
	Word TokenKind = iota + 1
	Number
	Punct
	Emoji
)

// IsWord reports whether the token is an alphabetic word.
func (t Token) IsWord() bool { return t.Kind == Word }

// StripNonASCII removes every byte outside the printable ASCII range,
// replacing runs of removed characters with a single space so that words
// separated only by emoji do not fuse together. The paper removes non-ASCII
// characters before any other processing (§3.2.1). Input that is already
// clean — printable ASCII, single interior spaces, no leading/trailing
// space — is returned as-is without copying.
func StripNonASCII(s string) string {
	if asciiClean(s) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	lastWasSpace := false
	for _, r := range s {
		switch {
		case r == '\n' || r == '\t':
			if !lastWasSpace {
				b.WriteByte(' ')
				lastWasSpace = true
			}
		case r == ' ':
			if !lastWasSpace {
				b.WriteByte(' ')
				lastWasSpace = true
			}
		case r > 0x20 && r < 0x7f:
			b.WriteRune(r)
			lastWasSpace = false
		default:
			if !lastWasSpace {
				b.WriteByte(' ')
				lastWasSpace = true
			}
		}
	}
	return strings.TrimSpace(b.String())
}

// asciiClean reports whether StripNonASCII would return s unchanged: every
// byte printable ASCII, spaces single and interior only.
func asciiClean(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' {
			if i == 0 || i == len(s)-1 || s[i-1] == ' ' {
				return false
			}
			continue
		}
		if c <= 0x20 || c >= 0x7f {
			return false
		}
	}
	return true
}

// Tokenize splits a sentence into tokens. Contractions keep their apostrophe
// ("doesn't" stays one token) because the POS tagger and negation detector
// handle them as units. Quoted error messages keep their quotes as separate
// Punct tokens so the error-message localizer can recover the quoted span.
func Tokenize(sentence string) []Token {
	return TokenizeInto(make([]Token, 0, len(sentence)/4+4), sentence)
}

// TokenizeInto is Tokenize appending into a caller-owned scratch slice
// (dst[:0] reuse), so steady-state tokenization performs no allocations
// once the scratch has grown to the corpus's longest sentence.
func TokenizeInto(toks []Token, sentence string) []Token {
	i := 0
	n := len(sentence)
	for i < n {
		c := sentence[i]
		switch {
		case c == ' ':
			i++
		case isLetter(c):
			start := i
			// Mixed alphanumerics stay one token ("mp3", "k9", "mi4c").
			for i < n && (isLetter(sentence[i]) || isDigit(sentence[i]) ||
				isApostropheInWord(sentence, i)) {
				i++
			}
			toks = append(toks, newToken(sentence[start:i], start, Word))
		case isDigit(c):
			start := i
			for i < n && (isDigit(sentence[i]) || sentence[i] == '.' && i+1 < n && isDigit(sentence[i+1])) {
				i++
			}
			// "7.0android" style: absorb letters into a Number-kind token.
			for i < n && isLetter(sentence[i]) {
				i++
			}
			toks = append(toks, newToken(sentence[start:i], start, Number))
		default:
			start := i
			i++
			// Group repeated identical punctuation ("!!!" -> one token).
			for i < n && sentence[i] == c && isPunctByte(c) {
				i++
			}
			toks = append(toks, newToken(sentence[start:i], start, Punct))
		}
	}
	return toks
}

func newToken(text string, start int, kind TokenKind) Token {
	return Token{Text: text, Lower: lowerASCII(text), Start: start, Kind: kind}
}

// lowerASCII lower-cases a token. Tokens are pure ASCII here (StripNonASCII
// runs first), and review text is overwhelmingly lowercase already, so the
// scan-then-return fast path makes Lower a zero-copy alias of Text for the
// common case.
func lowerASCII(s string) string {
	i := 0
	for ; i < len(s); i++ {
		if c := s[i]; c >= 'A' && c <= 'Z' {
			break
		}
	}
	if i == len(s) {
		return s
	}
	b := make([]byte, len(s))
	copy(b, s[:i])
	for ; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		b[i] = c
	}
	return string(b)
}

func isLetter(c byte) bool { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }
func isDigit(c byte) bool  { return c >= '0' && c <= '9' }

func isPunctByte(c byte) bool {
	return strings.IndexByte("!?.,;:-", c) >= 0
}

// isApostropheInWord reports whether position i is an apostrophe flanked by
// letters (so "doesn't" is one token but a closing quote is not).
func isApostropheInWord(s string, i int) bool {
	if s[i] != '\'' {
		return false
	}
	return i > 0 && isLetter(s[i-1]) && i+1 < len(s) && isLetter(s[i+1])
}

// tokenScratch recycles token buffers for the helpers that tokenize
// internally and only return derived data (Words, NormalizeSentence).
var tokenScratch = sync.Pool{
	New: func() any { s := make([]Token, 0, 64); return &s },
}

// Words returns the lower-cased word tokens of a sentence, dropping
// punctuation. It is the common shortcut for bag-of-words consumers.
func Words(sentence string) []string {
	sp := tokenScratch.Get().(*[]Token)
	toks := TokenizeInto((*sp)[:0], sentence)
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		if t.Kind == Word || t.Kind == Number {
			out = append(out, t.Lower)
		}
	}
	*sp = toks[:0]
	tokenScratch.Put(sp)
	return out
}

// SplitSentences splits review text into sentences. It mirrors what the
// paper does with NLTK: split on sentence-final punctuation, but do not split
// inside quoted error messages (reviews often embed messages like
// `it says "c:geo can't load data required to log visit"`), nor after common
// abbreviations, nor on ellipses inside a clause.
func SplitSentences(text string) []string {
	text = StripNonASCII(text)
	if text == "" {
		return nil
	}
	var (
		out     []string
		start   int
		inQuote bool
	)
	n := len(text)
	for i := 0; i < n; i++ {
		c := text[i]
		if c == '"' {
			inQuote = !inQuote
			continue
		}
		if inQuote {
			continue
		}
		if c != '.' && c != '!' && c != '?' {
			continue
		}
		// Consume the whole punctuation run ("!!!", "...").
		j := i
		for j+1 < n && (text[j+1] == '.' || text[j+1] == '!' || text[j+1] == '?') {
			j++
		}
		if c == '.' && j == i && looksLikeAbbrevDot(text, i) {
			continue
		}
		// A sentence boundary needs a following space + capital/EOF, or EOF.
		if j+1 >= n || boundaryFollows(text, j+1) {
			s := strings.TrimSpace(text[start : j+1])
			if s != "" {
				out = append(out, s)
			}
			start = j + 1
			i = j
		}
	}
	if tail := strings.TrimSpace(text[start:]); tail != "" {
		out = append(out, tail)
	}
	return out
}

// boundaryFollows reports whether position i (just after sentence-final
// punctuation) looks like the start of a new sentence.
func boundaryFollows(text string, i int) bool {
	// Skip spaces.
	for i < len(text) && text[i] == ' ' {
		i++
	}
	if i >= len(text) {
		return true
	}
	r := rune(text[i])
	return unicode.IsUpper(r) || unicode.IsDigit(r) || text[i] == '"' || unicode.IsLower(r)
}

// looksLikeAbbrevDot reports whether the '.' at position i is part of an
// abbreviation or a version number rather than a sentence end.
func looksLikeAbbrevDot(text string, i int) bool {
	// Version numbers: digit.digit
	if i > 0 && isDigit(text[i-1]) && i+1 < len(text) && isDigit(text[i+1]) {
		return true
	}
	// Single-letter abbreviation like "e.g." / "i.e." / initials.
	wordStart := i
	for wordStart > 0 && isLetter(text[wordStart-1]) {
		wordStart--
	}
	w := strings.ToLower(text[wordStart:i])
	switch w {
	case "e", "i", "g", "etc", "vs", "mr", "ms", "dr", "st":
		return true
	}
	return false
}
