package textproc

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestStripNonASCII(t *testing.T) {
	tests := []struct {
		name, in, want string
	}{
		{"plain", "hello world", "hello world"},
		{"emoji", "great app \U0001F600 love it", "great app love it"},
		{"accents", "café app", "caf app"},
		{"newlines", "line1\nline2\tline3", "line1 line2 line3"},
		{"empty", "", ""},
		{"only emoji", "\U0001F600\U0001F600", ""},
		{"leading emoji", "\U0001F600hello", "hello"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := StripNonASCII(tt.in); got != tt.want {
				t.Errorf("StripNonASCII(%q) = %q, want %q", tt.in, got, tt.want)
			}
		})
	}
}

func TestStripNonASCIIProperty(t *testing.T) {
	// Property: output contains only printable ASCII.
	f := func(s string) bool {
		out := StripNonASCII(s)
		for i := 0; i < len(out); i++ {
			if out[i] < 0x20 || out[i] >= 0x7f {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokenize(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want []string
	}{
		{"simple", "the app crashes", []string{"the", "app", "crashes"}},
		{"contraction", "doesn't work", []string{"doesn't", "work"}},
		{"number", "404 error", []string{"404", "error"}},
		{"version", "version 7.0 broken", []string{"version", "7.0", "broken"}},
		{"mixed", "k9 mail", []string{"k9", "mail"}},
		{"punct runs", "crash!!! again", []string{"crash", "!!!", "again"}},
		{"quotes", `says "failed to send"`, []string{"says", `"`, "failed", "to", "send", `"`}},
		{"empty", "", nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			toks := Tokenize(tt.in)
			got := make([]string, 0, len(toks))
			for _, tok := range toks {
				got = append(got, tok.Lower)
			}
			if len(got) == 0 {
				got = nil
			}
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("Tokenize(%q) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestTokenizeOffsets(t *testing.T) {
	in := "app crashed today"
	for _, tok := range Tokenize(in) {
		if got := in[tok.Start : tok.Start+len(tok.Text)]; got != tok.Text {
			t.Errorf("offset mismatch: token %q at %d, source slice %q", tok.Text, tok.Start, got)
		}
	}
}

func TestWords(t *testing.T) {
	got := Words("The app, sadly, crashed 3 times!")
	want := []string{"the", "app", "sadly", "crashed", "3", "times"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Words = %v, want %v", got, want)
	}
}

func TestSplitSentences(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want []string
	}{
		{
			name: "two sentences",
			in:   "The app crashes. I cannot use it.",
			want: []string{"The app crashes.", "I cannot use it."},
		},
		{
			name: "exclamation",
			in:   "Crash after crash! Uninstall very fast!",
			want: []string{"Crash after crash!", "Uninstall very fast!"},
		},
		{
			name: "quoted error message not split",
			in:   `it just says "c:geo can't load data. required to log visit" every time.`,
			want: []string{`it just says "c:geo can't load data. required to log visit" every time.`},
		},
		{
			name: "version number not split",
			in:   "Broken since version 5.2 on my phone.",
			want: []string{"Broken since version 5.2 on my phone."},
		},
		{
			name: "ellipsis",
			in:   "It crashes... every single time.",
			want: []string{"It crashes...", "every single time."},
		},
		{
			name: "no final punct",
			in:   "Sometimes not working",
			want: []string{"Sometimes not working"},
		},
		{name: "empty", in: "", want: nil},
		{
			name: "abbreviation",
			in:   "It fails e.g. when syncing.",
			want: []string{"It fails e.g. when syncing."},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := SplitSentences(tt.in)
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("SplitSentences(%q) = %q, want %q", tt.in, got, tt.want)
			}
		})
	}
}

func TestSplitSentencesProperty(t *testing.T) {
	// Property: concatenating sentence words equals the words of the input.
	f := func(s string) bool {
		var joined []string
		for _, sent := range SplitSentences(s) {
			joined = append(joined, Words(sent)...)
		}
		return strings.Join(joined, " ") == strings.Join(Words(StripNonASCII(s)), " ")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLevenshtein(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "", 3},
		{"", "xyz", 3},
		{"kitten", "sitting", 3},
		{"crashs", "crashes", 1},
		{"recieve", "receive", 2},
		{"flaw", "lawn", 2},
	}
	for _, tt := range tests {
		if got := Levenshtein(tt.a, tt.b); got != tt.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	symmetry := func(a, b string) bool {
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(symmetry, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("symmetry: %v", err)
	}
	identity := func(a string) bool { return Levenshtein(a, a) == 0 }
	if err := quick.Check(identity, &quick.Config{MaxCount: 100}); err != nil {
		t.Errorf("identity: %v", err)
	}
	triangle := func(a, b, c string) bool {
		if len(a) > 20 || len(b) > 20 || len(c) > 20 {
			return true
		}
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(triangle, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("triangle inequality: %v", err)
	}
}

func TestLevenshteinAtMost(t *testing.T) {
	if !LevenshteinAtMost("crashs", "crashes", 1) {
		t.Error("crashs/crashes should be within distance 1")
	}
	if LevenshteinAtMost("hello", "world", 2) {
		t.Error("hello/world should not be within distance 2")
	}
	if LevenshteinAtMost("a", "abcd", 2) {
		t.Error("length delta 3 cannot be within distance 2")
	}
}

func TestStripNonASCIIFastPath(t *testing.T) {
	// Clean input must come back as the identical string value (no copy).
	clean := "cannot fetch mail since the update"
	if got := StripNonASCII(clean); got != clean {
		t.Fatalf("fast path changed clean input: %q", got)
	}
	if n := testing.AllocsPerRun(100, func() { StripNonASCII(clean) }); n != 0 {
		t.Errorf("StripNonASCII on clean input allocates %.0f times, want 0", n)
	}
	// Mixed input still takes the slow path and cleans correctly.
	mixed := []struct{ in, want string }{
		{"  leading spaces", "leading spaces"},
		{"double  space", "double space"},
		{"trailing space ", "trailing space"},
		{"emoji \U0001F600 inside", "emoji inside"},
		{"tab\tsep", "tab sep"},
	}
	for _, tt := range mixed {
		if got := StripNonASCII(tt.in); got != tt.want {
			t.Errorf("StripNonASCII(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestTokenizeInto(t *testing.T) {
	scratch := make([]Token, 0, 32)
	for _, s := range []string{"send the mail!", "app crashed...", "ok"} {
		got := TokenizeInto(scratch[:0], s)
		want := Tokenize(s)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("TokenizeInto(%q) = %v, want %v", s, got, want)
		}
	}
	// Steady state reuses the scratch backing array: zero allocations.
	if n := testing.AllocsPerRun(100, func() {
		scratch = TokenizeInto(scratch[:0], "cannot fetch mail since the latest update")
	}); n != 0 {
		t.Errorf("TokenizeInto steady state allocates %.0f times, want 0", n)
	}
}

func TestLowerASCIIAliasing(t *testing.T) {
	toks := Tokenize("already lower case")
	for _, tok := range toks {
		if tok.Lower != tok.Text {
			t.Errorf("lowercase token %q: Lower %q differs", tok.Text, tok.Lower)
		}
	}
	toks = Tokenize("MixedCase WORD")
	if toks[0].Lower != "mixedcase" || toks[1].Lower != "word" {
		t.Errorf("mixed-case lowering wrong: %q %q", toks[0].Lower, toks[1].Lower)
	}
}
