// Similarity kernel layer: the dot-only hot path of the §4.1.1/Algorithm 1
// phrase×candidate scans.
//
// Every vector this package hands out is unit-length or zero: computeVector,
// PhraseVector, and hashVector all normalize before returning, and the zero
// vector only appears for empty phrases. For unit-or-zero vectors the cosine
// similarity *is* the plain dot product, so the scan kernel skips the two
// norm accumulations and the sqrt/divide that Cosine pays per candidate.
//
// The kernel operates over a Matrix: candidate vectors flattened row-major
// into one contiguous []float64 block (structure-of-arrays), so a scan walks
// a dense cache-friendly stripe instead of chasing per-candidate structs.
//
// On top of the flat scan sits an exact prescreen. Let U = {u_1..u_K} be an
// orthonormal basis spanning the lexicon's topic/group anchor directions
// (the shared components that carry all above-threshold similarity). Writing
// P for the projection onto span(U) and ⊥ for the orthogonal remainder,
//
//	dot(q, c) = Σ_k (q·u_k)(c·u_k) + dot(q_⊥, c_⊥)
//	          ≤ Σ_k (q·u_k)(c·u_k) + ‖q_⊥‖·‖c_⊥‖      (Cauchy–Schwarz)
//
// The right-hand side needs only the K precomputed anchor projections and
// the residual norm of each side — K+1 multiply-adds instead of Dim — and it
// can never under-estimate the true dot, so skipping a candidate whose bound
// falls short of the threshold (minus a floating-point safety margin) can
// never change which candidates match. Unrelated candidates have near-zero
// shared anchor components and residual products well below the 0.68
// threshold, so the bulk of a catalog scan never touches the full vectors.
package wordvec

import (
	"fmt"
	"math"
	"sync"
	"unsafe"
)

// prescreenEps is the safety margin of the prescreen comparison: a candidate
// is skipped only when its upper bound is below threshold−prescreenEps. The
// Cauchy–Schwarz slack is O(0.1) while accumulated rounding error on 64-dim
// unit vectors is O(1e-15), so the margin is overwhelming in both
// directions.
const prescreenEps = 1e-9

// prescreenBasisMax caps the anchor-basis size K. The prescreen costs K+1
// multiply-adds per candidate against Dim it saves, so K must stay well
// below Dim for the skip to pay.
const prescreenBasisMax = 20

// Dot returns the dot product of two vectors with a 4-way unrolled kernel.
// For the unit-or-zero vectors this package produces, Dot(a, b) is the
// cosine similarity of a and b (see Cosine, which recomputes both norms for
// arbitrary input).
func Dot(a, b Vector) float64 {
	var s0, s1, s2, s3 float64
	for i := 0; i < Dim; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	return (s0 + s1) + (s2 + s3)
}

// dotRow is Dot against one flattened matrix row (len Dim).
func dotRow(a *Vector, row []float64) float64 {
	row = row[:Dim] // one bounds check, then the loop is check-free
	var s0, s1, s2, s3 float64
	for i := 0; i < Dim; i += 4 {
		s0 += a[i] * row[i]
		s1 += a[i+1] * row[i+1]
		s2 += a[i+2] * row[i+2]
		s3 += a[i+3] * row[i+3]
	}
	return (s0 + s1) + (s2 + s3)
}

// DotBatch writes the dot product of query against every row of the
// flattened row-major matrix (len(matrix) = len(out)×Dim) into out. For
// unit-or-zero rows the outputs are the cosine similarities.
func DotBatch(query Vector, matrix []float64, out []float64) {
	for r := range out {
		out[r] = dotRow(&query, matrix[r*Dim:(r+1)*Dim])
	}
}

// Matrix is a structure-of-arrays batch of candidate phrase vectors: the
// vectors flattened row-major into one contiguous block, plus (after Finish)
// the anchor-projection sketch the exact prescreen reads. A finished Matrix
// is immutable and safe for concurrent scans.
type Matrix struct {
	rows int
	data []float64 // rows × Dim, row-major

	// Prescreen sketch (nil until Finish): anchor projections and residual
	// norm per row.
	proj []float64 // rows × K
	res  []float64 // rows

	// Quantized scan tier (nil until EnsureQuant; see quant.go): integer row
	// codes with sound error bounds plus the inverted-file cluster index.
	qt *quantTier
}

// NewMatrix returns an empty matrix with capacity for capRows rows.
func NewMatrix(capRows int) *Matrix {
	return &Matrix{data: make([]float64, 0, capRows*Dim)}
}

// Append adds one candidate vector and returns its row index. Appending
// after Finish is a misuse; the sketch would go stale (Finish again).
func (m *Matrix) Append(v Vector) int {
	r := m.rows
	m.data = append(m.data, v[:]...)
	m.rows++
	return r
}

// Rows returns the number of candidate rows.
func (m *Matrix) Rows() int { return m.rows }

// Row returns the flattened row (len Dim). The returned slice aliases the
// matrix; callers must not write to it.
func (m *Matrix) Row(i int) []float64 { return m.data[i*Dim : (i+1)*Dim] }

// Data returns the flattened row-major block, for DotBatch-style callers.
func (m *Matrix) Data() []float64 { return m.data }

// Finish builds the prescreen sketch: each row's projections onto the
// anchor basis and the norm of what remains. Scans work without it (pure
// DotBatch); with it, rows whose upper bound cannot reach the threshold are
// skipped.
func (m *Matrix) Finish() {
	basis := anchorBasis()
	k := len(basis)
	m.proj = make([]float64, m.rows*k)
	m.res = make([]float64, m.rows)
	var resid Vector
	for r := 0; r < m.rows; r++ {
		row := m.Row(r)
		copy(resid[:], row)
		for bi := range basis {
			p := dotRow(&basis[bi], row)
			m.proj[r*k+bi] = p
			for i := 0; i < Dim; i++ {
				resid[i] -= p * basis[bi][i]
			}
		}
		m.res[r] = math.Sqrt(Dot(resid, resid))
	}
}

// FinishReuse builds the prescreen sketch like Finish, copying the
// already-computed sketch row from src wherever rowMap names a source row
// (rowMap[r] = src row index, or -1 to compute fresh). A copied sketch row
// is bitwise identical to what Finish would recompute, because the sketch
// of a row is a pure function of the row data and the process-global anchor
// basis — so a matrix finished this way is indistinguishable from one
// finished from scratch, provided the mapped rows carry identical data.
// Incremental snapshot rebuilds use this to skip the Gram–Schmidt pass for
// every row carried over from the previous release.
func (m *Matrix) FinishReuse(src *Matrix, rowMap []int32) error {
	if len(rowMap) != m.rows {
		return fmt.Errorf("wordvec: rowMap of %d entries for %d rows", len(rowMap), m.rows)
	}
	basis := anchorBasis()
	k := len(basis)
	m.proj = make([]float64, m.rows*k)
	m.res = make([]float64, m.rows)
	var resid Vector
	for r := 0; r < m.rows; {
		if sr := rowMap[r]; sr >= 0 {
			if src == nil || src.proj == nil {
				return fmt.Errorf("wordvec: rowMap reuses row %d but src matrix has no sketch", sr)
			}
			if int(sr) >= src.rows {
				return fmt.Errorf("wordvec: rowMap names src row %d of %d", sr, src.rows)
			}
			// Copy the maximal contiguous source run in one memmove per
			// block — incremental rebuilds map long untouched stretches to
			// consecutive source rows.
			n := 1
			for r+n < m.rows && rowMap[r+n] == sr+int32(n) && int(sr)+n < src.rows {
				n++
			}
			copy(m.proj[r*k:(r+n)*k], src.proj[int(sr)*k:(int(sr)+n)*k])
			copy(m.res[r:r+n], src.res[int(sr):int(sr)+n])
			r += n
			continue
		}
		row := m.Row(r)
		copy(resid[:], row)
		for bi := range basis {
			p := dotRow(&basis[bi], row)
			m.proj[r*k+bi] = p
			for i := 0; i < Dim; i++ {
				resid[i] -= p * basis[bi][i]
			}
		}
		m.res[r] = math.Sqrt(Dot(resid, resid))
		r++
	}
	return nil
}

// Sketch returns the finished prescreen sketch: the rows×BasisSize anchor
// projections and the per-row residual norms (nil before Finish). The slices
// alias the matrix; callers must treat them as read-only. Snapshot encoding
// serializes them so a loaded matrix skips the Gram–Schmidt projection pass.
func (m *Matrix) Sketch() (proj, res []float64) { return m.proj, m.res }

// MatrixFromParts reassembles a finished Matrix from its serialized blocks:
// the rows×Dim flattened data and the prescreen sketch produced by Sketch.
// The slices are adopted, not copied — pass zero-copy snapshot views to get
// an allocation-free rebuild. Shapes are validated; the sketch may be
// omitted (both nil) for a matrix that was never finished.
func MatrixFromParts(data, proj, res []float64) (*Matrix, error) {
	if len(data)%Dim != 0 {
		return nil, fmt.Errorf("wordvec: matrix data of %d floats is not a multiple of Dim=%d", len(data), Dim)
	}
	rows := len(data) / Dim
	m := &Matrix{rows: rows, data: data}
	if proj == nil && res == nil {
		return m, nil
	}
	if k := BasisSize(); len(proj) != rows*k {
		return nil, fmt.Errorf("wordvec: sketch projections %d, want %d rows × basis %d", len(proj), rows, k)
	}
	if len(res) != rows {
		return nil, fmt.Errorf("wordvec: sketch residuals %d, want %d rows", len(res), rows)
	}
	m.proj, m.res = proj, res
	return m, nil
}

// RowVectors reinterprets a flattened row-major block (len a multiple of
// Dim) as a []Vector view without copying: Vector is [Dim]float64, so rows
// and array elements share one memory layout. The view aliases data;
// callers must treat it as read-only. Snapshot loading uses this to hand
// the per-API []Vector slices out of one contiguous file-backed block.
func RowVectors(data []float64) ([]Vector, error) {
	if len(data)%Dim != 0 {
		return nil, fmt.Errorf("wordvec: vector block of %d floats is not a multiple of Dim=%d", len(data), Dim)
	}
	if len(data) == 0 {
		return nil, nil
	}
	return unsafe.Slice((*Vector)(unsafe.Pointer(&data[0])), len(data)/Dim), nil
}

// Query is a prepared scan query: the phrase vector plus its anchor
// projections and residual norm, computed once and reused across every
// candidate row (and across worker chunks).
type Query struct {
	Vec   Vector
	proj  []float64
	resid Vector // Vec minus its anchor-basis projection (q_⊥)
	res   float64

	// Quantized form for the integer tier (see quant.go), prepared once so
	// per-entry scans never re-quantize: int16 codes, dequantization scale,
	// and the exact quantization error norm ‖Vec − qscale·qi‖.
	qi     [Dim]int16
	qscale float64
	qerr   float64
}

// PrepareQuery projects a query vector onto the anchor basis for
// prescreened scans.
func PrepareQuery(v Vector) Query {
	basis := anchorBasis()
	q := Query{Vec: v, proj: make([]float64, len(basis))}
	var resid Vector = v
	for bi := range basis {
		p := Dot(basis[bi], v)
		q.proj[bi] = p
		for i := 0; i < Dim; i++ {
			resid[i] -= p * basis[bi][i]
		}
	}
	q.resid = resid
	q.res = math.Sqrt(Dot(resid, resid))
	q.qscale, q.qerr = quantizeQuery(&q.Vec, &q.qi)
	return q
}

// bound returns the prescreen upper bound on dot(q, row r).
func (m *Matrix) bound(q *Query, r int) float64 {
	k := len(q.proj)
	b := q.res * m.res[r]
	pr := m.proj[r*k : (r+1)*k]
	for i := range pr {
		b += q.proj[i] * pr[i]
	}
	return b
}

// ScanCount tallies how the prescreen behaved over one scan: Pruned rows
// were skipped on the float sketch bound alone, IVFPruned rows died with
// their whole quantized-tier cluster, BoundPruned rows were skipped on the
// quantized per-row bound, Evaluated rows paid a full float dot product,
// Matched rows crossed the threshold. Every per-row outcome is a pure
// function of (model, query, row), so counts are exactly reproducible and
// chunk-partition invariant — the telemetry layer aggregates them per
// worker chunk and cmd/benchgate gates them to catch kernel regressions
// without wall-clock noise.
type ScanCount struct {
	Pruned, Evaluated, Matched int
	IVFPruned, BoundPruned     int
}

// Merge accumulates another chunk's counts.
func (c *ScanCount) Merge(o ScanCount) {
	c.Pruned += o.Pruned
	c.Evaluated += o.Evaluated
	c.Matched += o.Matched
	c.IVFPruned += o.IVFPruned
	c.BoundPruned += o.BoundPruned
}

// TotalPruned returns the rows skipped by any tier without a full dot.
func (c ScanCount) TotalPruned() int { return c.Pruned + c.IVFPruned + c.BoundPruned }

// ScanThreshold calls yield(row, dot) in row order for every row in
// [start, end) whose dot with the query reaches the threshold. With a
// finished sketch, rows whose upper bound provably cannot reach the
// threshold are skipped without reading their Dim floats; the yielded set is
// identical either way.
func (m *Matrix) ScanThreshold(q *Query, threshold float64, start, end int, yield func(row int, dot float64)) {
	m.ScanThresholdCount(q, threshold, start, end, yield)
}

// ScanThresholdCount is ScanThreshold returning the scan's ScanCount. The
// bookkeeping is three register increments alongside the bound test, so
// the counted scan is the only scan — there is no separate stats pass.
func (m *Matrix) ScanThresholdCount(q *Query, threshold float64, start, end int, yield func(row int, dot float64)) ScanCount {
	if m.qt != nil {
		return m.qt.scanThreshold(m, q, threshold, start, end, yield)
	}
	var sc ScanCount
	cutoff := threshold - prescreenEps
	for r := start; r < end; r++ {
		if m.res != nil && m.bound(q, r) < cutoff {
			sc.Pruned++
			continue
		}
		sc.Evaluated++
		if d := dotRow(&q.Vec, m.data[r*Dim:(r+1)*Dim]); d >= threshold {
			sc.Matched++
			yield(r, d)
		}
	}
	return sc
}

// AnyAtLeast reports whether any row in [start, end) reaches the threshold,
// stopping at the first hit (the per-entry early break of Algorithm 1).
func (m *Matrix) AnyAtLeast(q *Query, threshold float64, start, end int) bool {
	ok, _ := m.AnyAtLeastCount(q, threshold, start, end)
	return ok
}

// AnyAtLeastCount is AnyAtLeast returning the counts of the rows actually
// touched: because the scan stops at the first hit, Matched is at most 1
// and rows after the hit are neither pruned nor evaluated.
func (m *Matrix) AnyAtLeastCount(q *Query, threshold float64, start, end int) (bool, ScanCount) {
	if m.qt != nil {
		return m.qt.anyAtLeast(m, q, threshold, start, end)
	}
	var sc ScanCount
	cutoff := threshold - prescreenEps
	for r := start; r < end; r++ {
		if m.res != nil && m.bound(q, r) < cutoff {
			sc.Pruned++
			continue
		}
		sc.Evaluated++
		if dotRow(&q.Vec, m.data[r*Dim:(r+1)*Dim]) >= threshold {
			sc.Matched++
			return true, sc
		}
	}
	return false, sc
}

// --- anchor basis ---------------------------------------------------------------

var (
	basisOnce sync.Once
	basisVecs []Vector
)

// BasisSize returns K, the number of orthonormal anchor directions the
// prescreen projects onto.
func BasisSize() int { return len(anchorBasis()) }

// anchorBasis builds (once) an orthonormal basis over the lexicon's shared
// anchor directions: every topic anchor first — topics are few and every
// in-lexicon word carries one — then group anchors in lexicon order until
// the prescreenBasisMax cap. Modified Gram–Schmidt; near-dependent
// directions (tiny residual) are dropped rather than normalized into noise.
func anchorBasis() []Vector {
	basisOnce.Do(func() {
		var raw []Vector
		seenTopic := make(map[string]struct{})
		for _, g := range synonymGroups {
			if _, dup := seenTopic[g.topic]; dup {
				continue
			}
			seenTopic[g.topic] = struct{}{}
			raw = append(raw, hashVector("topic:"+g.topic))
		}
		for _, g := range synonymGroups {
			if len(raw) >= prescreenBasisMax {
				break
			}
			raw = append(raw, hashVector("group:"+g.anchor()))
		}
		for _, v := range raw {
			if len(basisVecs) >= prescreenBasisMax {
				break
			}
			for _, u := range basisVecs {
				p := Dot(u, v)
				for i := 0; i < Dim; i++ {
					v[i] -= p * u[i]
				}
			}
			n := math.Sqrt(Dot(v, v))
			if n < 1e-6 {
				continue
			}
			for i := 0; i < Dim; i++ {
				v[i] /= n
			}
			basisVecs = append(basisVecs, v)
		}
	})
	return basisVecs
}
