package wordvec

import (
	"math"
	"math/rand"
	"testing"
)

// randomUnit returns a random unit vector.
func randomUnit(rng *rand.Rand) Vector {
	var v Vector
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	normalize(&v)
	return v
}

// phraseCorpus embeds a spread of in-lexicon, out-of-lexicon, and mixed
// phrases — the vector population the real scans see.
func phraseCorpus(m *Model) []Vector {
	phrases := [][]string{
		{"fetch", "mail"}, {"get", "email"}, {"send", "message"},
		{"upload", "photo"}, {"save", "picture"}, {"delete", "file"},
		{"open", "app"}, {"login", "account"}, {"play", "video"},
		{"connect", "server"}, {"zorblax", "quux"}, {"frobnicate", "widget"},
		{"crash", "launch"}, {"sync", "calendar"}, {"read", "article"},
		{"show", "password"}, {"record", "audio"}, {"browse", "website"},
		{"parse", "xml", "config"}, {"validate", "email", "address"},
	}
	out := make([]Vector, 0, len(phrases))
	for _, p := range phrases {
		out = append(out, m.PhraseVector(p))
	}
	return out
}

// TestDotEqualsCosineOnUnitVectors: on the unit-or-zero vectors the model
// produces, Dot must agree with Cosine to float tolerance (they differ only
// by the redundant norm division), and exactly reproduce a naive dot.
func TestDotEqualsCosineOnUnitVectors(t *testing.T) {
	m := NewModel()
	vecs := phraseCorpus(m)
	for i, a := range vecs {
		for _, b := range vecs {
			dot := Dot(a, b)
			cos := Cosine(a, b)
			if math.Abs(dot-cos) > 1e-12 {
				t.Fatalf("vec %d: Dot=%v Cosine=%v diverge beyond tolerance", i, dot, cos)
			}
		}
	}
	// Zero vector: both conventions yield 0.
	var zero Vector
	if Dot(zero, vecs[0]) != 0 {
		t.Fatal("Dot with zero vector must be 0")
	}
	if Cosine(zero, vecs[0]) != 0 {
		t.Fatal("Cosine with zero vector must be 0")
	}
}

// TestDotUnrollMatchesNaive: the 4-way unrolled kernel must match a naive
// sequential dot to within reassociation tolerance on arbitrary vectors.
func TestDotUnrollMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		a, b := randomUnit(rng), randomUnit(rng)
		var naive float64
		for i := 0; i < Dim; i++ {
			naive += a[i] * b[i]
		}
		if math.Abs(Dot(a, b)-naive) > 1e-12 {
			t.Fatalf("trial %d: unrolled %v vs naive %v", trial, Dot(a, b), naive)
		}
	}
}

func TestDotBatch(t *testing.T) {
	m := NewModel()
	vecs := phraseCorpus(m)
	mat := NewMatrix(len(vecs))
	for _, v := range vecs {
		mat.Append(v)
	}
	q := m.PhraseVector([]string{"fetch", "mail"})
	out := make([]float64, mat.Rows())
	DotBatch(q, mat.Data(), out)
	for r, v := range vecs {
		if got := out[r]; got != Dot(q, v) {
			t.Fatalf("row %d: DotBatch %v != Dot %v", r, got, Dot(q, v))
		}
	}
}

// TestPrescreenBoundIsSound is the soundness property of the prescreen: the
// anchor-projection bound must never fall below the true dot (beyond the
// epsilon margin), for random unit vectors and for real phrase vectors.
func TestPrescreenBoundIsSound(t *testing.T) {
	m := NewModel()
	rng := rand.New(rand.NewSource(21))
	var cands []Vector
	cands = append(cands, phraseCorpus(m)...)
	for i := 0; i < 200; i++ {
		cands = append(cands, randomUnit(rng))
	}
	mat := NewMatrix(len(cands))
	for _, v := range cands {
		mat.Append(v)
	}
	mat.Finish()

	queries := append(phraseCorpus(m), randomUnit(rng), randomUnit(rng))
	for qi, qv := range queries {
		q := PrepareQuery(qv)
		for r, c := range cands {
			d := Dot(qv, c)
			b := mat.bound(&q, r)
			if b < d-prescreenEps {
				t.Fatalf("query %d row %d: bound %v < dot %v — prescreen unsound", qi, r, b, d)
			}
		}
	}
}

// TestScanThresholdMatchesBruteForce: the prescreened scan must yield
// exactly the rows a brute-force dot pass finds, for thresholds around the
// operating point.
func TestScanThresholdMatchesBruteForce(t *testing.T) {
	m := NewModel()
	rng := rand.New(rand.NewSource(3))
	var cands []Vector
	cands = append(cands, phraseCorpus(m)...)
	for i := 0; i < 300; i++ {
		cands = append(cands, randomUnit(rng))
	}
	mat := NewMatrix(len(cands))
	for _, v := range cands {
		mat.Append(v)
	}
	mat.Finish()

	for _, th := range []float64{0.2, 0.5, DefaultThreshold, 0.9} {
		for qi, qv := range phraseCorpus(m) {
			q := PrepareQuery(qv)
			var want []int
			for r, c := range cands {
				if Dot(qv, c) >= th {
					want = append(want, r)
				}
			}
			var got []int
			mat.ScanThreshold(&q, th, 0, mat.Rows(), func(r int, d float64) {
				if d != Dot(qv, cands[r]) {
					t.Fatalf("query %d row %d: yielded dot %v != Dot %v", qi, r, d, Dot(qv, cands[r]))
				}
				got = append(got, r)
			})
			if len(got) != len(want) {
				t.Fatalf("th=%v query %d: scan found %d rows, brute force %d", th, qi, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("th=%v query %d: row %d differs (%d vs %d)", th, qi, i, got[i], want[i])
				}
			}
			// AnyAtLeast agrees with the scan.
			if mat.AnyAtLeast(&q, th, 0, mat.Rows()) != (len(want) > 0) {
				t.Fatalf("th=%v query %d: AnyAtLeast disagrees with scan", th, qi)
			}
		}
	}
}

// TestScanCountConsistent: pruned+evaluated covers every row, matched
// equals the brute-force match count, and the early-exit AnyAtLeastCount
// books exactly the rows it touched.
func TestScanCountConsistent(t *testing.T) {
	m := NewModel()
	cands := phraseCorpus(m)
	mat := NewMatrix(len(cands))
	for _, v := range cands {
		mat.Append(v)
	}
	mat.Finish()
	qv := m.PhraseVector([]string{"fetch", "mail"})
	q := PrepareQuery(qv)
	sc := mat.ScanThresholdCount(&q, DefaultThreshold, 0, mat.Rows(), func(int, float64) {})
	if sc.Pruned+sc.Evaluated != mat.Rows() {
		t.Fatalf("pruned %d + evaluated %d != rows %d", sc.Pruned, sc.Evaluated, mat.Rows())
	}
	want := 0
	for _, c := range cands {
		if Dot(qv, c) >= DefaultThreshold {
			want++
		}
	}
	if sc.Matched != want {
		t.Fatalf("matched %d != brute force %d", sc.Matched, want)
	}

	hit, asc := mat.AnyAtLeastCount(&q, DefaultThreshold, 0, mat.Rows())
	if hit != (want > 0) {
		t.Fatalf("AnyAtLeastCount hit=%v, brute force %d matches", hit, want)
	}
	if asc.Matched > 1 {
		t.Fatalf("early-exit scan reported %d matches", asc.Matched)
	}
	if asc.Pruned+asc.Evaluated > mat.Rows() {
		t.Fatalf("early-exit scan touched %d rows of %d", asc.Pruned+asc.Evaluated, mat.Rows())
	}

	var merged ScanCount
	mid := mat.Rows() / 2
	merged.Merge(mat.ScanThresholdCount(&q, DefaultThreshold, 0, mid, func(int, float64) {}))
	merged.Merge(mat.ScanThresholdCount(&q, DefaultThreshold, mid, mat.Rows(), func(int, float64) {}))
	if merged != sc {
		t.Fatalf("chunked counts %+v != whole-scan counts %+v", merged, sc)
	}
}

// TestAnchorBasisOrthonormal: the Gram–Schmidt basis must be orthonormal to
// float tolerance (the projection identity the bound relies on).
func TestAnchorBasisOrthonormal(t *testing.T) {
	basis := anchorBasis()
	if len(basis) == 0 || len(basis) > prescreenBasisMax {
		t.Fatalf("basis size %d out of range (max %d)", len(basis), prescreenBasisMax)
	}
	for i := range basis {
		for j := range basis {
			d := Dot(basis[i], basis[j])
			want := 0.0
			if i == j {
				want = 1.0
			}
			if math.Abs(d-want) > 1e-9 {
				t.Fatalf("basis[%d]·basis[%d] = %v, want %v", i, j, d, want)
			}
		}
	}
}

// TestMatrixFromParts: a matrix reassembled from its serialized blocks must
// scan identically to the original — same sketch, same prune/evaluate/match
// decisions — and reject mis-shaped blocks.
func TestMatrixFromParts(t *testing.T) {
	m := NewModel()
	vecs := phraseCorpus(m)
	orig := NewMatrix(len(vecs))
	for _, v := range vecs {
		orig.Append(v)
	}
	orig.Finish()

	proj, res := orig.Sketch()
	if len(res) != orig.Rows() || len(proj) != orig.Rows()*BasisSize() {
		t.Fatalf("Sketch shapes %d/%d for %d rows", len(proj), len(res), orig.Rows())
	}
	re, err := MatrixFromParts(orig.Data(), proj, res)
	if err != nil {
		t.Fatalf("MatrixFromParts: %v", err)
	}
	q := PrepareQuery(m.PhraseVector([]string{"receive", "email"}))
	type hit struct {
		row int
		dot float64
	}
	scan := func(mx *Matrix) ([]hit, ScanCount) {
		var hits []hit
		sc := mx.ScanThresholdCount(&q, 0.3, 0, mx.Rows(), func(r int, d float64) {
			hits = append(hits, hit{r, d})
		})
		return hits, sc
	}
	wantHits, wantSC := scan(orig)
	gotHits, gotSC := scan(re)
	if len(gotHits) != len(wantHits) || gotSC != wantSC {
		t.Fatalf("rebuilt scan: %v %+v, want %v %+v", gotHits, gotSC, wantHits, wantSC)
	}
	for i := range wantHits {
		if gotHits[i] != wantHits[i] {
			t.Fatalf("hit %d: %+v != %+v", i, gotHits[i], wantHits[i])
		}
	}

	// Sketchless rebuild: same matches, nothing pruned.
	plain, err := MatrixFromParts(orig.Data(), nil, nil)
	if err != nil {
		t.Fatalf("MatrixFromParts without sketch: %v", err)
	}
	plainHits, plainSC := scan(plain)
	if len(plainHits) != len(wantHits) || plainSC.Pruned != 0 {
		t.Fatalf("sketchless scan: %v %+v", plainHits, plainSC)
	}

	// Shape validation.
	if _, err := MatrixFromParts(orig.Data()[:Dim-1], nil, nil); err == nil {
		t.Fatal("accepted data not a multiple of Dim")
	}
	if _, err := MatrixFromParts(orig.Data(), proj[:len(proj)-1], res); err == nil {
		t.Fatal("accepted short projections")
	}
	if _, err := MatrixFromParts(orig.Data(), proj, res[:len(res)-1]); err == nil {
		t.Fatal("accepted short residuals")
	}
}

// TestMatrixFromPartsEmpty: the zero-row round trip.
func TestMatrixFromPartsEmpty(t *testing.T) {
	m, err := MatrixFromParts(nil, nil, nil)
	if err != nil || m.Rows() != 0 {
		t.Fatalf("empty rebuild: %v rows=%d", err, m.Rows())
	}
}

// TestRowVectors: the zero-copy []Vector view matches Row contents and
// aliases the block.
func TestRowVectors(t *testing.T) {
	m := NewModel()
	vecs := phraseCorpus(m)
	mx := NewMatrix(len(vecs))
	for _, v := range vecs {
		mx.Append(v)
	}
	view, err := RowVectors(mx.Data())
	if err != nil {
		t.Fatalf("RowVectors: %v", err)
	}
	if len(view) != mx.Rows() {
		t.Fatalf("view rows %d, want %d", len(view), mx.Rows())
	}
	for i := range view {
		if view[i] != vecs[i] {
			t.Fatalf("row %d differs", i)
		}
	}
	if _, err := RowVectors(mx.Data()[:Dim+1]); err == nil {
		t.Fatal("accepted block not a multiple of Dim")
	}
	if v, err := RowVectors(nil); err != nil || v != nil {
		t.Fatalf("empty block: %v %v", v, err)
	}
}
