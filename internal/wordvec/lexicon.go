package wordvec

import "sort"

// synGroup is a set of near-synonymous words sharing a group anchor, grouped
// under a broader topic anchor. Words inside one group are similar (cos ≈
// 0.8); words in different groups of the same topic are related but below
// the matching threshold (cos ≈ 0.3).
type synGroup struct {
	topic string
	words []string
}

// anchor is the group's stable identity (its first word).
func (g synGroup) anchor() string { return g.words[0] }

// synonymGroups is the curated domain lexicon. It covers the vocabulary of
// the paper's motivating examples: "picture" ≈ "video" (same media topic? —
// no: the paper treats them as *similar nouns*, so they share one group),
// "fetch mail" ≈ "get email", "send SMS" ≈ "send text message", etc.
var synonymGroups = []synGroup{
	// --- messaging ---
	{topic: "messaging", words: []string{"mail", "email", "emails", "inbox", "gmail"}},
	{topic: "messaging", words: []string{"message", "messages", "sms", "mms", "text", "texts"}},
	{topic: "messaging", words: []string{"chat", "chats", "conversation", "conversations", "thread"}},
	{topic: "messaging", words: []string{"notification", "notifications", "alert", "alerts"}},
	{topic: "messaging", words: []string{"draft", "drafts", "outbox"}},
	{topic: "messaging", words: []string{"attachment", "attachments", "enclosure"}},

	// --- media ---
	{topic: "media", words: []string{"picture", "pictures", "photo", "photos", "image", "images", "video", "videos", "snapshot", "shot", "media", "clip"}},
	{topic: "media", words: []string{"camera", "lens", "viewfinder"}},
	{topic: "media", words: []string{"gallery", "album", "albums"}},
	{topic: "media", words: []string{"music", "song", "songs", "audio", "track", "tracks", "sound"}},
	{topic: "media", words: []string{"podcast", "podcasts", "episode", "episodes"}},
	{topic: "media", words: []string{"play", "plays", "playing", "played", "playback", "stream", "streaming"}},
	{topic: "media", words: []string{"record", "records", "recording", "capture", "captures", "capturing", "snap", "tape"}},
	{topic: "media", words: []string{"subtitle", "subtitles", "caption", "captions"}},

	// --- transfer verbs ---
	{topic: "transfer", words: []string{"send", "sends", "sending", "sent", "transmit", "deliver", "submit"}},
	{topic: "transfer", words: []string{"upload", "uploads", "uploading", "uploaded", "post", "posts", "posting", "publish"}},
	{topic: "transfer", words: []string{"receive", "receives", "receiving", "received", "fetch", "fetches", "fetching", "fetched", "get", "gets", "getting", "got", "retrieve", "retrieves", "download", "downloads", "downloading", "downloaded", "pull", "obtain"}},
	{topic: "transfer", words: []string{"sync", "syncs", "syncing", "synced", "synchronize", "synchronization", "refresh", "refreshes", "refreshing", "update", "updates", "updating", "updated", "upgrade", "upgraded"}},
	{topic: "transfer", words: []string{"share", "shares", "sharing", "shared", "forward", "forwards", "forwarding"}},
	{topic: "transfer", words: []string{"import", "imports", "importing", "export", "exports", "exporting", "transfer", "transfers", "migrate", "backup", "restore"}},

	// --- storage ---
	{topic: "storage", words: []string{"save", "saves", "saving", "saved", "store", "stores", "storing", "stored", "write", "writes", "writing", "persist", "keep"}},
	{topic: "storage", words: []string{"delete", "deletes", "deleting", "deleted", "remove", "removes", "removing", "removed", "erase", "clear", "clears", "discard", "trash"}},
	{topic: "storage", words: []string{"file", "files", "document", "documents", "folder", "folders", "directory"}},
	{topic: "storage", words: []string{"storage", "memory", "card", "disk", "space", "sdcard", "sd"}},
	{topic: "storage", words: []string{"cache", "cached", "caching", "buffer"}},
	{topic: "storage", words: []string{"database", "db", "table", "record"}},

	// --- network ---
	{topic: "network", words: []string{"connect", "connects", "connecting", "connected", "connection", "connections", "reconnect"}},
	{topic: "network", words: []string{"server", "servers", "host", "backend", "cloud", "service"}},
	{topic: "network", words: []string{"network", "internet", "wifi", "data", "cellular", "lte"}},
	{topic: "network", words: []string{"link", "links", "url", "urls", "address", "site", "sites", "website", "websites", "webpage", "page", "pages"}},
	{topic: "network", words: []string{"browse", "browses", "browsing", "browser", "surf", "visit", "navigate", "open"}},
	{topic: "network", words: []string{"certificate", "certificates", "ssl", "tls", "https", "cert", "certs"}},
	{topic: "network", words: []string{"socket", "sockets", "port", "tcp"}},
	{topic: "network", words: []string{"timeout", "latency", "lag", "delay"}},

	// --- account/security ---
	{topic: "account", words: []string{"login", "log", "signin", "authenticate", "authentication", "auth"}},
	{topic: "account", words: []string{"register", "registers", "registering", "registration", "signup", "enroll", "join"}},
	{topic: "account", words: []string{"account", "accounts", "profile", "profiles", "credential", "credentials"}},
	{topic: "account", words: []string{"password", "passwords", "passphrase", "pin", "passcode"}},
	{topic: "account", words: []string{"verify", "verifies", "verification", "confirm", "confirms", "confirmation", "validate", "validation"}},
	{topic: "account", words: []string{"encrypt", "encryption", "encrypted", "decrypt", "secure", "security"}},

	// --- telephony/contacts ---
	{topic: "telephony", words: []string{"contact", "contacts", "address", "addressbook", "people"}},
	{topic: "telephony", words: []string{"call", "calls", "calling", "called", "dial", "dials", "dialing", "phone", "ring"}},
	{topic: "telephony", words: []string{"voicemail", "calllog"}},

	// --- location ---
	{topic: "location", words: []string{"location", "locations", "gps", "position", "coordinates", "place"}},
	{topic: "location", words: []string{"map", "maps", "navigation", "route", "routes", "directions"}},
	{topic: "location", words: []string{"track", "tracks", "tracking", "locate", "locates", "locating", "find", "finds", "finding", "found", "search", "searches", "searching", "lookup", "discover", "query"}},

	// --- UI ---
	{topic: "ui", words: []string{"button", "buttons", "key", "control"}},
	{topic: "ui", words: []string{"screen", "screens", "display", "page", "window", "activity", "lockscreen"}},
	{topic: "ui", words: []string{"menu", "menus", "toolbar", "drawer", "navigation"}},
	{topic: "ui", words: []string{"widget", "widgets", "component", "view", "element"}},
	{topic: "ui", words: []string{"click", "clicks", "clicked", "tap", "taps", "tapped", "press", "presses", "pressed", "touch", "push"}},
	{topic: "ui", words: []string{"scroll", "scrolls", "scrolling", "swipe", "swipes", "swiping", "slide"}},
	{topic: "ui", words: []string{"type", "types", "typing", "enter", "input", "edit", "edits", "editing", "write"}},
	{topic: "ui", words: []string{"show", "shows", "showing", "shown", "display", "displays", "displaying", "displayed", "render", "renders", "rendering", "appear", "appears"}},
	{topic: "ui", words: []string{"hide", "hides", "hidden", "dismiss", "disappear", "disappears", "vanish"}},
	{topic: "ui", words: []string{"theme", "themes", "font", "fonts", "color", "colors", "style", "dark", "light"}},
	{topic: "ui", words: []string{"keyboard", "keypad", "ime"}},
	{topic: "ui", words: []string{"reply", "replies", "replying", "respond", "responds", "answer", "answers"}},

	// --- lifecycle ---
	{topic: "lifecycle", words: []string{"open", "opens", "opening", "opened", "launch", "launches", "launching", "launched", "start", "starts", "starting", "started", "boot", "run", "runs", "running"}},
	{topic: "lifecycle", words: []string{"close", "closes", "closing", "closed", "exit", "exits", "quit", "stop", "stops", "stopping", "stopped", "terminate", "kill"}},
	{topic: "lifecycle", words: []string{"install", "installs", "installed", "installing", "reinstall", "reinstalled", "setup"}},
	{topic: "lifecycle", words: []string{"uninstall", "uninstalled", "uninstalling", "deinstall"}},
	{topic: "lifecycle", words: []string{"resume", "resumes", "resumed", "pause", "pauses", "paused", "suspend"}},
	{topic: "lifecycle", words: []string{"create", "creates", "creating", "created", "make", "makes", "making", "made", "add", "adds", "adding", "added", "new", "insert"}},

	// --- errors ---
	{topic: "errors", words: []string{"error", "errors", "bug", "bugs", "fault", "faults", "defect", "defects", "glitch", "glitches", "issue", "issues", "problem", "problems", "flaw"}},
	{topic: "errors", words: []string{"crash", "crashes", "crashed", "crashing", "die", "dies", "died", "abort"}},
	{topic: "errors", words: []string{"freeze", "freezes", "frozen", "froze", "freezing", "hang", "hangs", "hung", "stuck", "unresponsive"}},
	{topic: "errors", words: []string{"fail", "fails", "failed", "failing", "failure", "failures", "broken", "broke", "break", "breaks"}},
	{topic: "errors", words: []string{"exception", "exceptions", "stacktrace", "traceback"}},
	{topic: "errors", words: []string{"fix", "fixes", "fixed", "fixing", "repair", "patch", "resolve", "solve", "solved"}},

	// --- reading/content ---
	{topic: "content", words: []string{"read", "reads", "reading", "view", "views", "viewing", "viewed", "watch", "watches", "watching", "see", "look"}},
	{topic: "content", words: []string{"book", "books", "ebook", "novel", "chapter", "chapters", "reader"}},
	{topic: "content", words: []string{"article", "articles", "feed", "feeds", "news", "story", "stories", "post", "posts"}},
	{topic: "content", words: []string{"comment", "comments", "reply", "review", "reviews"}},
	{topic: "content", words: []string{"tweet", "tweets", "timeline", "status"}},
	{topic: "content", words: []string{"load", "loads", "loading", "loaded", "reload", "render"}},

	// --- settings/config ---
	{topic: "settings", words: []string{"setting", "settings", "preference", "preferences", "option", "options", "configuration", "config", "configure"}},
	{topic: "settings", words: []string{"enable", "enables", "enabled", "activate", "turn"}},
	{topic: "settings", words: []string{"disable", "disables", "disabled", "deactivate", "off"}},
	{topic: "settings", words: []string{"select", "selects", "selected", "choose", "chooses", "chose", "pick", "picks", "switch", "toggle"}},

	// --- misc app nouns ---
	{topic: "misc", words: []string{"app", "apps", "application", "applications", "program", "software"}},
	{topic: "misc", words: []string{"version", "versions", "release", "releases", "build"}},
	{topic: "misc", words: []string{"device", "devices", "tablet", "handset"}},
	{topic: "misc", words: []string{"battery", "power", "charge"}},
	{topic: "misc", words: []string{"permission", "permissions", "access", "grant"}},
	{topic: "misc", words: []string{"calendar", "event", "events", "schedule", "reminder", "reminders", "alarm", "alarms"}},
	{topic: "misc", words: []string{"task", "tasks", "todo", "note", "notes"}},
	{topic: "misc", words: []string{"game", "games", "puzzle", "puzzles", "crossword", "crosswords", "solitaire", "level"}},
	{topic: "misc", words: []string{"card", "cards", "deck", "decks", "flashcard", "flashcards"}},
	{topic: "misc", words: []string{"stat", "stats", "statistic", "statistics", "score", "scores", "progress", "history"}},
	{topic: "misc", words: []string{"bus", "transit", "stop", "stops", "arrival", "arrivals", "departure"}},
	{topic: "misc", words: []string{"torrent", "torrents", "magnet", "seed"}},
	{topic: "misc", words: []string{"geocache", "geocaches", "cache", "waypoint", "waypoints", "compass"}},
	{topic: "misc", words: []string{"blog", "blogs", "wordpress", "site"}},
	{topic: "misc", words: []string{"filter", "filters", "sort", "label", "labels", "tag", "tags", "category"}},
	{topic: "misc", words: []string{"log", "logs", "journal", "visit"}},
	{topic: "misc", words: []string{"archive", "archives", "archived"}},
}

// GroupCount returns the number of synonym groups; exposed for tests.
func GroupCount() int { return len(synonymGroups) }

// LexiconWords returns every word of the embedding lexicon (group words and
// topic anchors, deduplicated) in sorted order, for interner construction.
func LexiconWords() []string {
	seen := make(map[string]struct{}, 8*len(synonymGroups))
	var out []string
	add := func(w string) {
		if _, ok := seen[w]; !ok {
			seen[w] = struct{}{}
			out = append(out, w)
		}
	}
	for _, g := range synonymGroups {
		add(g.topic)
		for _, w := range g.words {
			add(w)
		}
	}
	sort.Strings(out)
	return out
}
