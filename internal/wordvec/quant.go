// Quantized scan tier: the fleet-scale fast path of the similarity kernel.
//
// For one app's candidate matrix (tens to hundreds of rows) the float sketch
// prescreen in kernel.go is enough. A fleet of resident apps multiplies the
// candidate count by orders of magnitude, and the scan cost becomes the
// per-row bound itself: K+1 floats read and K+1 multiply-adds for every row,
// whether or not it could ever match. The quantized tier layers two cheaper
// exact filters around the sketch — they only ever skip rows that provably
// cannot reach the threshold:
//
//  1. An inverted-file cluster prescreen above the rows. Rows are grouped by
//     deterministic k-means over their anchor-basis representation — the K
//     sketch projections plus the residual norm. Fleet corpora are dominated
//     by near-duplicate phrase families (the same framework verbs across
//     apps), and those families are separated exactly there. Each cluster
//     stores one sound compound bound, and a cluster whose bound misses the
//     threshold retires every member row for the price of a 2-byte
//     cluster-id load and a branch. Splitting any member c into its anchor
//     projections cp and its orthogonal remainder c_⊥,
//
//     dot(q, c) = Σ_i qp_i·cp_i + dot(q_⊥, c_⊥)
//
//     the two parts are bounded separately:
//
//     box term — per-coordinate projection extremes boxMin/boxMax over the
//     members give Σ_i qp_i·cp_i ≤ Σ_i max(qp_i·boxMin_i, qp_i·boxMax_i):
//     each anchor coordinate maximized independently over the cluster's
//     bounding box. Tight because the clustering separates exactly these
//     coordinates.
//
//     residual-centroid term — the mean member residual vector ν and the
//     spread S = max ‖c_⊥ − ν‖ give, by the triangle inequality and
//     Cauchy–Schwarz,
//
//     dot(q_⊥, c_⊥) = dot(q_⊥, ν) + dot(q_⊥, c_⊥ − ν) ≤ dot(q_⊥, ν) + ‖q_⊥‖·S
//
//     This is the load-bearing improvement over the naive ‖q_⊥‖·‖c_⊥‖
//     Cauchy–Schwarz term: a near-duplicate family shares most of its
//     residual (the same base words), so ν carries it and S shrinks to the
//     per-app decoration noise — zero for exact duplicates — while
//     unrelated families' ν is nearly orthogonal to q_⊥ and the dot term
//     stays near zero.
//
//  2. Per-row integer quantization with a sound score bound, for rows whose
//     cluster stayed live and whose float sketch bound did not already kill
//     them. Each row c is stored as int8 codes Q with a scale s
//     (s = maxAbs/127, code = round(c_i/s)), 64 bytes per row instead of
//     512; rows whose exact reconstruction error norm ‖c − sQ‖ exceeds
//     quantErrCap fall back to int16 codes, so adversarially shaped rows
//     keep a tight bound instead of widening it. Writing q = s_q·Q_q + e_q
//     and c = s_c·Q_c + e_c (the exact remainders),
//
//     dot(q, c) = s_q·s_c·(Q_q·Q_c) + q·e_c + e_q·c − e_q·e_c
//     ≤ s_q·s_c·(Q_q·Q_c) + ‖e_c‖ + ‖e_q‖ + ‖e_q‖·‖e_c‖
//
//     using Cauchy–Schwarz and ‖q‖ ≤ 1, ‖c‖ ≤ 1 (every vector this package
//     produces is unit or zero). The error norms are computed exactly at
//     quantization time, so the bound is sound — and it is far tighter than
//     the sketch's Cauchy–Schwarz residual term, so most rows that survive
//     the sketch die here without their 512-byte float rows ever being read.
//
// Scan order inside a live cluster is cheapest-first: float sketch bound,
// integer code bound, exact float64 rescore — the same dotRow the float tier
// runs, so the yielded (row, dot) pairs are bitwise identical to an
// unquantized scan and recall is 1.0 by construction. Every per-row and
// per-cluster decision is a pure function of (query, matrix, row), so scans
// chunked across workers yield and count identically to sequential ones.
//
// Matrices below quantMinRows rows never build the tier (the float sketch
// already wins there); EnsureQuantForce exists for tests and snapshots that
// persist the tier regardless of size.
package wordvec

import (
	"fmt"
	"math"
	"sort"
)

const (
	// quantMinRows is the auto-quantization gate: matrices smaller than
	// this keep the float sketch path (EnsureQuant is a no-op). The
	// threshold sits above every single-app matrix in the seeded corpus
	// and above the 1024-row micro-benchmark matrices, so only fleet-scale
	// candidate sets pay the build cost.
	quantMinRows = 4096

	// QuantMinRows re-exports the auto-quantization gate for callers that
	// must predict whether a full build would grow a tier — the incremental
	// rebuild path patches the previous tier only when the from-scratch
	// path would also have one, keeping scan telemetry comparable.
	QuantMinRows = quantMinRows

	// quantErrCap bounds the acceptable int8 reconstruction error norm.
	// Rows beyond it re-quantize as int16, dividing the error by ~256. For
	// unit 64-dim vectors the int8 error norm is ≤ maxAbs·√Dim/254 ≤ 0.0315
	// in the worst case and typically < 0.005, so the fallback fires only
	// on adversarially shaped rows.
	quantErrCap = 0.015

	// quantMaxClusters caps the inverted file size; cluster-liveness flags
	// live in a fixed stack array of this size during scans.
	quantMaxClusters = 256

	// quantClusterRows is the target mean cluster population (k ≈
	// rows/quantClusterRows, clamped to [1, quantMaxClusters]). Smaller
	// clusters mean tighter boxes and spreads; the whole cluster pass costs
	// k·(2K+Dim) multiply-adds per scan, so even the cap is noise next to
	// the per-row work it saves.
	quantClusterRows = 64

	// quantKMeansIters is the number of Lloyd refinement iterations after
	// the deterministic farthest-first seeding. The k-means pass only sees
	// the minority of rows left over after exact-duplicate grouping, so a
	// small fixed budget converges and keeps the build cost flat.
	quantKMeansIters = 2

	// quantDupMin is the smallest exact-duplicate row group that earns a
	// dedicated point-mass cluster. Fleet corpora repeat framework-derived
	// phrases byte-identically across apps; a point-mass cluster has zero
	// box width and zero spread, so its bound *is* the exact dot and a
	// non-matching phrase retires every fleet-wide copy in one comparison.
	quantDupMin = 4

	// quantRPDim is the number of fixed random directions the residual part
	// of each row is projected onto for *clustering only*: rows sharing a
	// phrase family share most of their residual, and the low-dim projection
	// exposes that to k-means without paying full-Dim distances. The bounds
	// derived from the final clusters never touch these features, so they
	// cannot affect soundness — only cluster quality.
	quantRPDim = 8

	// quantEps is the safety margin of every quantized-tier bound
	// comparison, covering float rounding in the bound arithmetic itself
	// (O(1e-15) on these magnitudes; the margin is overwhelming).
	quantEps = 1e-9
)

// quantTier is the quantized scan structure of one Matrix. All row-indexed
// slices follow the matrix's original row order (the scan walks rows in
// yield order; the integer codes are the dense stripe it reads). A built
// tier is immutable and safe for concurrent scans.
type quantTier struct {
	scales []float64 // per row: dequantization scale (row ≈ scale·codes)
	errs   []float64 // per row: exact ‖row − scale·codes‖
	offs   []uint32  // per row: code byte offset; len rows+1
	data   []byte    // integer codes, row-major (int8 or LE int16 per row)

	clusterOf []uint16  // per row: inverted-file cluster index
	resCent   []float64 // k × Dim mean member residual vectors ν
	resSpread []float64 // k: max member ‖c_⊥ − ν‖
	boxMin    []float64 // k × K: per-coordinate projection minima
	boxMax    []float64 // k × K: per-coordinate projection maxima

	// Member lists derived from clusterOf (rebuilt on adopt, never
	// serialized): rows grouped by cluster, ascending within each cluster,
	// so a scan touches only live clusters' rows and a dead cluster costs
	// two binary searches total instead of one branch per member row.
	// memberProj/memberRes duplicate each member's sketch row in the same
	// cluster-major order, so the per-member sketch bound inside a live
	// cluster streams contiguous memory instead of gathering scattered
	// m.proj rows — the gather was the single hottest load in fleet scans.
	memberRows   []uint32  // n row indices, cluster-major
	clusterStart []uint32  // k+1 offsets into memberRows
	memberProj   []float64 // n × K anchor projections, member order
	memberRes    []float64 // n residual norms, member order

	// pointMass flags clusters whose member rows are bitwise-identical
	// vectors (verified against the float data on build/adopt, never
	// trusted from geometry alone). Identical rows have identical exact
	// dots, so a scan rescores one member and settles every copy — derived,
	// never serialized.
	pointMass []bool

	// resNorm is ‖ν‖ per cluster (derived): dot(q_⊥, ν) ≤ ‖q_⊥‖·‖ν‖, so a
	// cluster whose bound misses the cutoff even with that cruder term dies
	// without its Dim-float centroid ever being read.
	resNorm []float64

	// scaleErr interleaves scales and errs pairwise (derived), so the
	// per-row integer bound reads one cache line for both instead of two.
	scaleErr []float64

	adopted bool // float/code blocks alias a snapshot image
}

// buildMembers derives the cluster-major member lists from clusterOf and
// lays the members' sketch rows out contiguously in the same order.
func (m *Matrix) buildMembers(t *quantTier) {
	k := len(t.resSpread)
	t.clusterStart = make([]uint32, k+1)
	for _, c := range t.clusterOf {
		t.clusterStart[c+1]++
	}
	for j := 0; j < k; j++ {
		t.clusterStart[j+1] += t.clusterStart[j]
	}
	t.memberRows = make([]uint32, len(t.clusterOf))
	next := make([]uint32, k)
	copy(next, t.clusterStart[:k])
	for r, c := range t.clusterOf {
		t.memberRows[next[c]] = uint32(r)
		next[c]++
	}
	K := len(m.proj) / m.rows
	t.memberProj = make([]float64, len(t.memberRows)*K)
	t.memberRes = make([]float64, len(t.memberRows))
	for i, r32 := range t.memberRows {
		r := int(r32)
		copy(t.memberProj[i*K:(i+1)*K], m.proj[r*K:(r+1)*K])
		t.memberRes[i] = m.res[r]
	}
	t.resNorm = make([]float64, k)
	for j := 0; j < k; j++ {
		var s float64
		for _, v := range t.resCent[j*Dim : (j+1)*Dim] {
			s += v * v
		}
		t.resNorm[j] = math.Sqrt(s)
	}
	t.scaleErr = make([]float64, 2*len(t.scales))
	for r, s := range t.scales {
		t.scaleErr[2*r] = s
		t.scaleErr[2*r+1] = t.errs[r]
	}
}

// markPointMass flags the clusters whose member rows are bitwise-identical.
// The flag is set by comparing the actual float rows — never inferred from
// the cluster geometry (a mean of N identical floats is not bitwise exact),
// and never trusted from a snapshot — so a hand-built tier can never smuggle
// a wrong shared dot past it, and a tier adopted from a snapshot flags
// exactly the clusters the builder did. Mixed clusters fail on the first
// differing float, so the pass is one cheap sweep over the rows.
func (m *Matrix) markPointMass(t *quantTier) {
	k := len(t.resSpread)
	t.pointMass = make([]bool, k)
outer:
	for j := 0; j < k; j++ {
		members := t.memberRows[t.clusterStart[j]:t.clusterStart[j+1]]
		if len(members) < 2 {
			continue
		}
		first := m.data[int(members[0])*Dim : (int(members[0])+1)*Dim]
		for _, r := range members[1:] {
			row := m.data[int(r)*Dim : (int(r)+1)*Dim]
			for i := range first {
				if row[i] != first[i] {
					continue outer
				}
			}
		}
		t.pointMass[j] = true
	}
}

// QuantParts is the serialized shape of a tier (see Quant / AdoptQuant).
// All slices alias the tier (or, on adopt, become the tier); treat them as
// read-only.
type QuantParts struct {
	Scales, Errs       []float64 // per row
	ResCent, ResSpread []float64 // k×Dim, k
	BoxMin, BoxMax     []float64 // k×K each
	Offs               []uint32  // rows+1
	ClusterOf          []uint16  // per row
	Data               []byte    // integer codes
}

// HasQuant reports whether the quantized tier is built.
func (m *Matrix) HasQuant() bool { return m.qt != nil }

// QuantClusters returns the inverted-file cluster count (0 without a tier).
func (m *Matrix) QuantClusters() int {
	if m.qt == nil {
		return 0
	}
	return len(m.qt.resSpread)
}

// EnsureQuant builds the quantized tier if the matrix is large enough to
// profit from it (≥ quantMinRows rows) and reports whether the tier is
// present afterwards. Building is deterministic — same rows, same tier. It
// must be called before the matrix is shared across goroutines (core builds
// it at precompute/load time); scans themselves never mutate the matrix.
func (m *Matrix) EnsureQuant() bool {
	if m.qt != nil {
		return true
	}
	if m.rows < quantMinRows {
		return false
	}
	m.buildQuant()
	return true
}

// EnsureQuantForce builds the tier regardless of the size gate (tests,
// forced-quantization snapshots). Empty matrices stay tierless.
func (m *Matrix) EnsureQuantForce() bool {
	if m.qt != nil {
		return true
	}
	if m.rows == 0 {
		return false
	}
	m.buildQuant()
	return true
}

// PatchQuant builds this matrix's quantized tier incrementally from src's
// tier, for incremental snapshot rebuilds. Rows mapped to a source row
// (rowMap[r] = src row, or -1 for fresh) keep their integer codes, scale,
// exact error norm, and cluster assignment verbatim — all four are pure
// functions of the row data, which is identical by the caller's contract.
// Fresh rows are quantized from scratch and assigned to the nearest
// surviving cluster by residual-centroid distance (ties to the lowest
// index), and that cluster's bound ingredients are widened to stay sound:
// its projection box is extended to cover the newcomer's anchor
// projections, and its residual spread grows to max(old spread, distance of
// the newcomer's residual to the *old* centroid ν). The centroid itself is
// never moved, so every surviving member's stored distance remains valid;
// rows that disappeared simply leave the box and spread valid-but-looser.
// Point-mass flags are re-verified against the float data (markPointMass),
// so a duplicate cluster that gains a non-identical member is demoted
// automatically. The patched tier can therefore differ from what a full
// buildQuant would produce — clusters drift looser over many patches — but
// every bound stays sound, and the scan rescores candidates with the exact
// float kernel, so yielded rows and dots are identical either way; only
// pruning efficiency degrades. Callers that measure high churn should
// invalidate (buildQuant) instead.
//
// Returns (false, nil) without building when src carries no tier, the
// matrix is empty, or the matrix already has a tier it would overwrite is
// not possible (an existing tier returns (true, nil) untouched).
func (m *Matrix) PatchQuant(src *Matrix, rowMap []int32) (bool, error) {
	if m.qt != nil {
		return true, nil
	}
	if m.rows == 0 || src == nil || src.qt == nil {
		return false, nil
	}
	if len(rowMap) != m.rows {
		return false, fmt.Errorf("wordvec: quant patch rowMap of %d entries for %d rows", len(rowMap), m.rows)
	}
	if m.res == nil {
		return false, fmt.Errorf("wordvec: quant patch requires a finished sketch")
	}
	st := src.qt
	k := len(st.resSpread)
	K := len(m.proj) / m.rows
	t := &quantTier{
		scales:    make([]float64, m.rows),
		errs:      make([]float64, m.rows),
		offs:      make([]uint32, m.rows+1),
		data:      make([]byte, 0, m.rows*Dim),
		clusterOf: make([]uint16, m.rows),
		resCent:   append([]float64(nil), st.resCent...),
		resSpread: append([]float64(nil), st.resSpread...),
		boxMin:    append([]float64(nil), st.boxMin...),
		boxMax:    append([]float64(nil), st.boxMax...),
	}
	basis := anchorBasis()
	var buf8 [Dim]byte
	var buf16 [2 * Dim]byte
	var resid Vector
	for r := 0; r < m.rows; r++ {
		if sr := int(rowMap[r]); sr >= 0 {
			if sr >= src.rows {
				return false, fmt.Errorf("wordvec: quant patch rowMap names src row %d of %d", sr, src.rows)
			}
			lo, hi := st.offs[sr], st.offs[sr+1]
			t.data = append(t.data, st.data[lo:hi]...)
			t.scales[r], t.errs[r] = st.scales[sr], st.errs[sr]
			t.clusterOf[r] = st.clusterOf[sr]
			t.offs[r+1] = uint32(len(t.data))
			continue
		}
		row := m.Row(r)
		s, e := quantizeRow8(row, buf8[:])
		if e > quantErrCap {
			s, e = quantizeRow16(row, buf16[:])
			t.data = append(t.data, buf16[:]...)
		} else {
			t.data = append(t.data, buf8[:]...)
		}
		t.scales[r], t.errs[r] = s, e
		t.offs[r+1] = uint32(len(t.data))

		// Residual c_⊥ = row − Σ_i p_i·u_i from the finished sketch.
		copy(resid[:], row)
		pr := m.proj[r*K : (r+1)*K]
		for bi := range basis {
			p := pr[bi]
			for i := 0; i < Dim; i++ {
				resid[i] -= p * basis[bi][i]
			}
		}
		best, bd := 0, math.MaxFloat64
		for j := 0; j < k; j++ {
			if d := sqDist(resid[:], t.resCent[j*Dim:(j+1)*Dim]); d < bd {
				best, bd = j, d
			}
		}
		t.clusterOf[r] = uint16(best)
		if d := math.Sqrt(bd); d > t.resSpread[best] {
			t.resSpread[best] = d
		}
		lo, hi := t.boxMin[best*K:(best+1)*K], t.boxMax[best*K:(best+1)*K]
		for i, p := range pr {
			if p < lo[i] {
				lo[i] = p
			}
			if p > hi[i] {
				hi[i] = p
			}
		}
	}
	m.buildMembers(t)
	m.markPointMass(t)
	m.qt = t
	return true, nil
}

// QuantHeapBytes reports the heap memory the tier occupies beyond the float
// matrix: everything when built locally, only the decoded index arrays when
// the code/float blocks alias a snapshot image (serving registries charge
// this against their byte budget).
func (m *Matrix) QuantHeapBytes() int64 {
	t := m.qt
	if t == nil {
		return 0
	}
	idx := int64(4*len(t.offs) + 2*len(t.clusterOf) +
		4*len(t.memberRows) + 4*len(t.clusterStart) + len(t.pointMass) +
		8*len(t.memberProj) + 8*len(t.memberRes) +
		8*len(t.resNorm) + 8*len(t.scaleErr))
	if t.adopted {
		return idx
	}
	return idx + int64(len(t.data)) +
		8*int64(len(t.scales)+len(t.errs)+len(t.resCent)+len(t.resSpread)+
			len(t.boxMin)+len(t.boxMax))
}

// buildQuant quantizes every row and builds the inverted file.
func (m *Matrix) buildQuant() {
	if m.res == nil {
		m.Finish()
	}
	t := &quantTier{
		scales: make([]float64, m.rows),
		errs:   make([]float64, m.rows),
		offs:   make([]uint32, m.rows+1),
		data:   make([]byte, 0, m.rows*Dim),
	}
	var buf8 [Dim]byte
	var buf16 [2 * Dim]byte
	for r := 0; r < m.rows; r++ {
		row := m.Row(r)
		s, e := quantizeRow8(row, buf8[:])
		if e > quantErrCap {
			s, e = quantizeRow16(row, buf16[:])
			t.data = append(t.data, buf16[:]...)
		} else {
			t.data = append(t.data, buf8[:]...)
		}
		t.scales[r], t.errs[r] = s, e
		t.offs[r+1] = uint32(len(t.data))
	}
	m.buildClusters(t)
	m.buildMembers(t)
	m.markPointMass(t)
	m.qt = t
}

// quantizeRow8 encodes one row as int8 codes and returns the scale and the
// exact reconstruction error norm ‖row − scale·codes‖.
func quantizeRow8(row []float64, out []byte) (scale, errNorm float64) {
	maxAbs := 0.0
	for _, v := range row {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		for i := range out {
			out[i] = 0
		}
		return 0, 0
	}
	scale = maxAbs / 127
	var e2 float64
	for i, v := range row {
		q := math.Round(v / scale)
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		}
		out[i] = byte(int8(q))
		d := v - scale*q
		e2 += d * d
	}
	return scale, math.Sqrt(e2)
}

// quantizeRow16 is the int16 fallback (little-endian codes).
func quantizeRow16(row []float64, out []byte) (scale, errNorm float64) {
	maxAbs := 0.0
	for _, v := range row {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		for i := range out {
			out[i] = 0
		}
		return 0, 0
	}
	scale = maxAbs / 32767
	var e2 float64
	for i, v := range row {
		q := math.Round(v / scale)
		if q > 32767 {
			q = 32767
		} else if q < -32767 {
			q = -32767
		}
		u := uint16(int16(q))
		out[2*i] = byte(u)
		out[2*i+1] = byte(u >> 8)
		d := v - scale*q
		e2 += d * d
	}
	return scale, math.Sqrt(e2)
}

// quantizeQuery encodes a query vector as int16 codes (queries are few and
// reused across whole scans, so the wider width costs nothing and keeps the
// query-side error negligible).
func quantizeQuery(v *Vector, out *[Dim]int16) (scale, errNorm float64) {
	maxAbs := 0.0
	for _, f := range v {
		if a := math.Abs(f); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		for i := range out {
			out[i] = 0
		}
		return 0, 0
	}
	scale = maxAbs / 32767
	var e2 float64
	for i, f := range v {
		q := math.Round(f / scale)
		if q > 32767 {
			q = 32767
		} else if q < -32767 {
			q = -32767
		}
		out[i] = int16(q)
		d := f - scale*q
		e2 += d * d
	}
	return scale, math.Sqrt(e2)
}

// dotQ8 is the int16-query × int8-row integer dot. Worst case |sum| ≤
// 64·32767·127 < 2³¹, so an int32 accumulator cannot overflow.
func dotQ8(q *[Dim]int16, row []byte) int32 {
	row = row[:Dim]
	var s0, s1, s2, s3 int32
	for i := 0; i < Dim; i += 4 {
		s0 += int32(q[i]) * int32(int8(row[i]))
		s1 += int32(q[i+1]) * int32(int8(row[i+1]))
		s2 += int32(q[i+2]) * int32(int8(row[i+2]))
		s3 += int32(q[i+3]) * int32(int8(row[i+3]))
	}
	return (s0 + s1) + (s2 + s3)
}

// dotQ16 is the int16 × int16 dot (int64 accumulator: 64·32767² > 2³¹).
func dotQ16(q *[Dim]int16, row []byte) int64 {
	row = row[:2*Dim]
	var s0, s1 int64
	for i := 0; i < Dim; i += 2 {
		a := int16(uint16(row[2*i]) | uint16(row[2*i+1])<<8)
		b := int16(uint16(row[2*i+2]) | uint16(row[2*i+3])<<8)
		s0 += int64(q[i]) * int64(a)
		s1 += int64(q[i+1]) * int64(b)
	}
	return s0 + s1
}

// rowUpper returns the sound upper bound on dot(q, row r) from the integer
// codes: the dequantized integer dot plus the stored row error, the query
// error, and their cross term (see the package comment derivation).
func (t *quantTier) rowUpper(q *Query, r int) float64 {
	lo, hi := t.offs[r], t.offs[r+1]
	codes := t.data[lo:hi]
	scale, err := t.scaleErr[2*r], t.scaleErr[2*r+1]
	var approx float64
	if int(hi-lo) == Dim {
		approx = q.qscale * scale * float64(dotQ8(&q.qi, codes))
	} else {
		approx = q.qscale * scale * float64(dotQ16(&q.qi, codes))
	}
	return approx + err + q.qerr*(1+err)
}

// liveClusters evaluates the compound cluster bound — projection box term
// plus residual-centroid term (see the package comment derivation) — for
// every cluster: a dead cluster's member rows are skipped without even
// their sketches being read. All three summands are needed for soundness
// (the ν dot may be positive), so there is no partial early-out; the whole
// pass is k·(2K+Dim) multiply-adds, noise next to the per-row work it
// saves.
func (t *quantTier) liveClusters(q *Query, cutoff float64, live *[quantMaxClusters]bool) {
	K := len(q.proj)
	for j := range t.resSpread {
		box := 0.0
		lo, hi := t.boxMin[j*K:(j+1)*K], t.boxMax[j*K:(j+1)*K]
		for i, p := range q.proj {
			if p >= 0 {
				box += p * hi[i]
			} else {
				box += p * lo[i]
			}
		}
		// Crude first pass: dot(q_⊥, ν) ≤ ‖q_⊥‖·‖ν‖ (Cauchy–Schwarz), so
		// when even that overshoot misses the cutoff the cluster is dead
		// without its Dim-float centroid being read — the exact ν dot can
		// only be smaller, so the live flags are identical either way.
		if box+q.res*(t.resSpread[j]+t.resNorm[j]) < cutoff {
			live[j] = false
			continue
		}
		b := box + q.res*t.resSpread[j] + dotRowAny(&q.resid, t.resCent[j*Dim:(j+1)*Dim])
		live[j] = b >= cutoff
	}
}

// scanThreshold is ScanThresholdCount over the quantized tier. Per row in a
// live cluster the filters run cheapest-first: float sketch bound, integer
// code bound, exact rescore with the same dotRow as the float tier — so the
// yielded (row, dot) pairs are identical (rows, bits, order) to an
// unquantized scan. Every outcome is a pure function of (query, matrix,
// row) — chunked scans sum to the same counts and yield the same rows for
// any [start, end) partition.
func (t *quantTier) scanThreshold(m *Matrix, q *Query, threshold float64, start, end int, yield func(row int, dot float64)) ScanCount {
	var sc ScanCount
	cutoff := threshold - quantEps
	sketchCutoff := threshold - prescreenEps
	var live [quantMaxClusters]bool
	t.liveClusters(q, cutoff, &live)

	// Walk the cluster-major member lists: a dead cluster contributes only
	// its [start, end) population count (two binary searches), so its rows
	// cost nothing at all. Hits are gathered cluster-by-cluster — each
	// cluster's hits arrive in ascending row order, so the collection is a
	// concatenation of sorted runs — and merged back into global row order
	// before yielding: same rows, same dots, same order as the float tier,
	// without a comparison sort on the hit set.
	type hit struct {
		row int
		dot float64
	}
	var hits []hit
	var runs []int // start index of each per-cluster ascending run in hits
	K := len(q.proj)
	for j := range t.resSpread {
		mark := len(hits)
		members := t.memberRows[t.clusterStart[j]:t.clusterStart[j+1]]
		lo := sort.Search(len(members), func(i int) bool { return int(members[i]) >= start })
		hi := sort.Search(len(members), func(i int) bool { return int(members[i]) >= end })
		if !live[j] {
			sc.IVFPruned += hi - lo
			continue
		}
		if t.pointMass[j] && hi > lo {
			// Bitwise-identical member rows share one exact dot: rescore
			// the first member and settle every fleet-wide copy with it.
			sc.Evaluated += hi - lo
			r0 := int(members[lo])
			if d := dotRow(&q.Vec, m.data[r0*Dim:(r0+1)*Dim]); d >= threshold {
				sc.Matched += hi - lo
				for _, r32 := range members[lo:hi] {
					hits = append(hits, hit{int(r32), d})
				}
				runs = append(runs, mark)
			}
			continue
		}
		base := int(t.clusterStart[j])
		for idx := base + lo; idx < base+hi; idx++ {
			// Float sketch bound over the member-order sketch copy — the
			// identical summation order as Matrix.bound, streaming instead
			// of gathering.
			b := q.res * t.memberRes[idx]
			mp := t.memberProj[idx*K : (idx+1)*K]
			for i := range mp {
				b += q.proj[i] * mp[i]
			}
			if b < sketchCutoff {
				sc.Pruned++
				continue
			}
			r := int(t.memberRows[idx])
			if t.rowUpper(q, r) < cutoff {
				sc.BoundPruned++
				continue
			}
			sc.Evaluated++
			if d := dotRow(&q.Vec, m.data[r*Dim:(r+1)*Dim]); d >= threshold {
				sc.Matched++
				hits = append(hits, hit{r, d})
			}
		}
		if len(hits) > mark {
			runs = append(runs, mark)
		}
	}
	switch len(runs) {
	case 0:
	case 1:
		for _, h := range hits {
			yield(h.row, h.dot)
		}
	default:
		// K-way merge of the sorted runs; the run count is the number of
		// hit-bearing clusters, typically a handful, so a linear head scan
		// beats any heap or comparison sort.
		ends := make([]int, len(runs))
		copy(ends, runs[1:])
		ends[len(ends)-1] = len(hits)
		for {
			best := -1
			for i := range runs {
				if runs[i] < ends[i] && (best < 0 || hits[runs[i]].row < hits[runs[best]].row) {
					best = i
				}
			}
			if best < 0 {
				break
			}
			h := hits[runs[best]]
			runs[best]++
			yield(h.row, h.dot)
		}
	}
	return sc
}

// anyAtLeast is AnyAtLeastCount over the quantized tier. Per-entry ranges
// are tiny, so the cluster pass is skipped and the per-row filters run
// directly in the same cheapest-first order (the quantized query rides on
// the prepared Query, so no per-call quantization happens either).
func (t *quantTier) anyAtLeast(m *Matrix, q *Query, threshold float64, start, end int) (bool, ScanCount) {
	var sc ScanCount
	cutoff := threshold - quantEps
	sketchCutoff := threshold - prescreenEps
	for r := start; r < end; r++ {
		if m.bound(q, r) < sketchCutoff {
			sc.Pruned++
			continue
		}
		if t.rowUpper(q, r) < cutoff {
			sc.BoundPruned++
			continue
		}
		sc.Evaluated++
		if dotRow(&q.Vec, m.data[r*Dim:(r+1)*Dim]) >= threshold {
			sc.Matched++
			return true, sc
		}
	}
	return false, sc
}

// --- inverted-file clustering ----------------------------------------------------

// buildClusters groups rows into the inverted-file clusters and derives the
// sound per-cluster bound ingredients — the projection box and the residual
// centroid + spread — from the final assignment. Grouping is two-tier and
// fully deterministic:
//
//  1. Exact-duplicate groups. Rows with identical vectors (framework-derived
//     phrases repeated across a fleet of apps) of at least quantDupMin
//     members get dedicated point-mass clusters, largest group first (ties
//     by first appearance). Their projection box has zero width and their
//     residual spread is zero, so the cluster bound equals the exact dot and
//     one comparison settles every fleet-wide copy of the phrase.
//
//  2. Leftover rows — app-decorated variants and small groups — are split
//     over the remaining cluster budget by deterministic k-means over their
//     anchor-basis representation (the K sketch projections, the residual
//     norm, and fixed random projections of the residual). Seeding is
//     farthest-first from the largest residual; ties always resolve to the
//     lowest index, and the iteration count is fixed, so the same matrix
//     always produces the same clusters.
func (m *Matrix) buildClusters(t *quantTier) {
	n := m.rows
	K := len(m.proj) / n

	// Per-row residual vectors c_⊥ = row − Σ_i p_i·u_i — the sketch already
	// holds the p_i, so this is one basis sweep per row. The residuals feed
	// both the clustering features and the exact bound derivation below.
	basis := anchorBasis()
	resid := make([]float64, n*Dim)
	for r := 0; r < n; r++ {
		out := resid[r*Dim : (r+1)*Dim]
		copy(out, m.Row(r))
		pr := m.proj[r*K : (r+1)*K]
		for bi := range basis {
			p := pr[bi]
			b := &basis[bi]
			for i := 0; i < Dim; i++ {
				out[i] -= p * b[i]
			}
		}
	}

	// Tier 1: exact-duplicate grouping. Vector is a comparable array type,
	// so a map keyed by the row value groups identical rows directly; group
	// identity is fixed by first appearance, never by map order.
	type dupGroup struct {
		first int
		rows  []int
	}
	byVec := make(map[Vector]int, n)
	var groups []dupGroup
	for r := 0; r < n; r++ {
		var key Vector
		copy(key[:], m.Row(r))
		gi, ok := byVec[key]
		if !ok {
			gi = len(groups)
			byVec[key] = gi
			groups = append(groups, dupGroup{first: r})
		}
		groups[gi].rows = append(groups[gi].rows, r)
	}
	var dup []int
	for gi := range groups {
		if len(groups[gi].rows) >= quantDupMin {
			dup = append(dup, gi)
		}
	}
	sort.Slice(dup, func(a, b int) bool {
		ga, gb := &groups[dup[a]], &groups[dup[b]]
		if len(ga.rows) != len(gb.rows) {
			return len(ga.rows) > len(gb.rows)
		}
		return ga.first < gb.first
	})
	// Budget split under the hard quantMaxClusters cap: the k-means tier
	// reserves what the leftover rows want at the usual density (at most
	// half the cap), and duplicate groups take dedicated clusters from the
	// rest — a point-mass cluster costs a fraction of one member's scan, so
	// it is never traded away just because the matrix is small.
	dupRows := 0
	for _, gi := range dup {
		dupRows += len(groups[gi].rows)
	}
	klWant := (n - dupRows) / quantClusterRows
	if n-dupRows > 0 && klWant < 1 {
		klWant = 1
	}
	if klWant > quantMaxClusters/2 {
		klWant = quantMaxClusters / 2
	}
	if maxDup := quantMaxClusters - klWant; len(dup) > maxDup {
		dup = dup[:maxDup]
	}

	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	for ci, gi := range dup {
		for _, r := range groups[gi].rows {
			assign[r] = ci
		}
	}
	g := len(dup)
	var leftover []int
	for r := 0; r < n; r++ {
		if assign[r] < 0 {
			leftover = append(leftover, r)
		}
	}

	// Tier 2: deterministic k-means over the leftover rows only, on the
	// full remaining cluster budget. Feature rows are [projections...,
	// residual norm, residual random projections...]; the fixed rp
	// directions are derived from the same deterministic hash embedding as
	// everything else.
	kl := quantMaxClusters - g
	if kl > len(leftover) {
		kl = len(leftover)
	}
	if kl > 0 {
		var rpDirs [quantRPDim]Vector
		for i := range rpDirs {
			rpDirs[i] = hashVector(fmt.Sprintf("quantrp:%d", i))
		}
		fdim := K + 1 + quantRPDim
		L := len(leftover)
		feat := make([]float64, L*fdim)
		for i, r := range leftover {
			fr := feat[i*fdim : (i+1)*fdim]
			copy(fr, m.proj[r*K:(r+1)*K])
			fr[K] = m.res[r]
			rr := resid[r*Dim : (r+1)*Dim]
			for d := range rpDirs {
				fr[K+1+d] = dotRow(&rpDirs[d], rr)
			}
		}
		sq := func(a, b []float64) float64 {
			var s float64
			for i := range a {
				d := a[i] - b[i]
				s += d * d
			}
			return s
		}

		// Farthest-first seeding from the largest leftover residual.
		cent := make([]float64, kl*fdim)
		first := 0
		for i := 1; i < L; i++ {
			if m.res[leftover[i]] > m.res[leftover[first]] {
				first = i
			}
		}
		copy(cent[:fdim], feat[first*fdim:(first+1)*fdim])
		dist := make([]float64, L)
		for i := 0; i < L; i++ {
			dist[i] = sq(feat[i*fdim:(i+1)*fdim], cent[:fdim])
		}
		for j := 1; j < kl; j++ {
			far := 0
			for i := 1; i < L; i++ {
				if dist[i] > dist[far] {
					far = i
				}
			}
			cj := cent[j*fdim : (j+1)*fdim]
			copy(cj, feat[far*fdim:(far+1)*fdim])
			for i := 0; i < L; i++ {
				if d := sq(feat[i*fdim:(i+1)*fdim], cj); d < dist[i] {
					dist[i] = d
				}
			}
		}

		// Lloyd refinement with a fixed iteration budget; the final pass
		// only assigns. Ties go to the lowest cluster index; emptied
		// clusters keep a zero centroid (deterministic either way).
		sub := make([]int, L)
		counts := make([]int, kl)
		for iter := 0; iter <= quantKMeansIters; iter++ {
			for i := 0; i < L; i++ {
				fr := feat[i*fdim : (i+1)*fdim]
				best, bd := 0, math.MaxFloat64
				for j := 0; j < kl; j++ {
					if d := sq(fr, cent[j*fdim:(j+1)*fdim]); d < bd {
						best, bd = j, d
					}
				}
				sub[i] = best
			}
			if iter == quantKMeansIters {
				break
			}
			for i := range cent {
				cent[i] = 0
			}
			for j := range counts {
				counts[j] = 0
			}
			for i := 0; i < L; i++ {
				j := sub[i]
				counts[j]++
				fr := feat[i*fdim : (i+1)*fdim]
				cj := cent[j*fdim : (j+1)*fdim]
				for d := 0; d < fdim; d++ {
					cj[d] += fr[d]
				}
			}
			for j := 0; j < kl; j++ {
				if counts[j] == 0 {
					continue
				}
				inv := 1 / float64(counts[j])
				cj := cent[j*fdim : (j+1)*fdim]
				for d := 0; d < fdim; d++ {
					cj[d] *= inv
				}
			}
		}
		for i, r := range leftover {
			assign[r] = g + sub[i]
		}
	}
	ktot := g + kl

	// Compact away empty clusters, then derive the bounds from the final
	// assignment.
	counts := make([]int, ktot)
	for r := 0; r < n; r++ {
		counts[assign[r]]++
	}
	remap := make([]int, ktot)
	newK := 0
	for j := 0; j < ktot; j++ {
		if counts[j] > 0 {
			remap[j] = newK
			newK++
		} else {
			remap[j] = -1
		}
	}

	t.clusterOf = make([]uint16, n)
	t.resCent = make([]float64, newK*Dim)
	t.resSpread = make([]float64, newK)
	t.boxMin = make([]float64, newK*K)
	t.boxMax = make([]float64, newK*K)
	for i := range t.boxMin {
		t.boxMin[i] = math.MaxFloat64
		t.boxMax[i] = -math.MaxFloat64
	}
	sizes := make([]int, newK)
	for r := 0; r < n; r++ {
		j := remap[assign[r]]
		t.clusterOf[r] = uint16(j)
		sizes[j]++
		rr := resid[r*Dim : (r+1)*Dim]
		cj := t.resCent[j*Dim : (j+1)*Dim]
		for i := 0; i < Dim; i++ {
			cj[i] += rr[i]
		}
		lo, hi := t.boxMin[j*K:(j+1)*K], t.boxMax[j*K:(j+1)*K]
		pr := m.proj[r*K : (r+1)*K]
		for i, p := range pr {
			if p < lo[i] {
				lo[i] = p
			}
			if p > hi[i] {
				hi[i] = p
			}
		}
	}
	for j := 0; j < newK; j++ {
		inv := 1 / float64(sizes[j])
		cj := t.resCent[j*Dim : (j+1)*Dim]
		for i := 0; i < Dim; i++ {
			cj[i] *= inv
		}
	}
	for r := 0; r < n; r++ {
		j := t.clusterOf[r]
		if d := math.Sqrt(sqDist(resid[r*Dim:(r+1)*Dim], t.resCent[int(j)*Dim:(int(j)+1)*Dim])); d > t.resSpread[j] {
			t.resSpread[j] = d
		}
	}
}

// sqDist returns the squared Euclidean distance of two Dim-float slices.
func sqDist(a, b []float64) float64 {
	a, b = a[:Dim], b[:Dim]
	var s0, s1, s2, s3 float64
	for i := 0; i < Dim; i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	return (s0 + s1) + (s2 + s3)
}

// dotRowAny is dotRow against an arbitrary Dim-float slice (cluster
// centroids are not Vector values).
func dotRowAny(a *Vector, row []float64) float64 {
	row = row[:Dim]
	var s0, s1, s2, s3 float64
	for i := 0; i < Dim; i += 4 {
		s0 += a[i] * row[i]
		s1 += a[i+1] * row[i+1]
		s2 += a[i+2] * row[i+2]
		s3 += a[i+3] * row[i+3]
	}
	return (s0 + s1) + (s2 + s3)
}

// --- serialization ----------------------------------------------------------------

// Quant exposes the tier's blocks for snapshot serialization; ok is false
// without a tier.
func (m *Matrix) Quant() (QuantParts, bool) {
	t := m.qt
	if t == nil {
		return QuantParts{}, false
	}
	return QuantParts{
		Scales: t.scales, Errs: t.errs,
		ResCent: t.resCent, ResSpread: t.resSpread,
		BoxMin: t.boxMin, BoxMax: t.boxMax,
		Offs: t.offs, ClusterOf: t.clusterOf, Data: t.data,
	}, true
}

// AdoptQuant installs a deserialized tier after validating its shape against
// the matrix, which must carry its prescreen sketch — the quantized scan
// layers on top of it. With adopted=true the float and code blocks are
// assumed to alias a snapshot image (QuantHeapBytes then charges only the
// index arrays). The slices are adopted, not copied.
func (m *Matrix) AdoptQuant(p QuantParts, adopted bool) error {
	rows := m.rows
	if rows > 0 && m.res == nil {
		return fmt.Errorf("wordvec: quant tier adopted onto a matrix without a prescreen sketch")
	}
	if len(p.Scales) != rows || len(p.Errs) != rows || len(p.Offs) != rows+1 || len(p.ClusterOf) != rows {
		return fmt.Errorf("wordvec: quant tier rows %d/%d/%d/%d, matrix has %d",
			len(p.Scales), len(p.Errs), len(p.Offs)-1, len(p.ClusterOf), rows)
	}
	k := len(p.ResSpread)
	if rows > 0 && (k < 1 || k > quantMaxClusters) {
		return fmt.Errorf("wordvec: quant tier has %d clusters, want 1..%d", k, quantMaxClusters)
	}
	K := BasisSize()
	if len(p.ResCent) != k*Dim || len(p.BoxMin) != k*K || len(p.BoxMax) != k*K {
		return fmt.Errorf("wordvec: quant cluster blocks %d/%d/%d for %d clusters (basis %d)",
			len(p.ResCent), len(p.BoxMin), len(p.BoxMax), k, K)
	}
	if p.Offs[0] != 0 {
		return fmt.Errorf("wordvec: quant offsets start at %d", p.Offs[0])
	}
	for r := 0; r < rows; r++ {
		w := int(p.Offs[r+1]) - int(p.Offs[r])
		if w != Dim && w != 2*Dim {
			return fmt.Errorf("wordvec: quant row %d spans %d bytes, want %d or %d", r, w, Dim, 2*Dim)
		}
		if int(p.ClusterOf[r]) >= k {
			return fmt.Errorf("wordvec: quant row %d in cluster %d of %d", r, p.ClusterOf[r], k)
		}
		if s, e := p.Scales[r], p.Errs[r]; math.IsNaN(s) || math.IsInf(s, 0) || s < 0 ||
			math.IsNaN(e) || math.IsInf(e, 0) || e < 0 {
			return fmt.Errorf("wordvec: quant row %d has invalid scale/error", r)
		}
	}
	if rows > 0 && int(p.Offs[rows]) != len(p.Data) {
		return fmt.Errorf("wordvec: quant codes %d bytes, offsets end at %d", len(p.Data), p.Offs[rows])
	}
	for j := 0; j < k; j++ {
		if v := p.ResSpread[j]; math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("wordvec: quant cluster %d has invalid spread", j)
		}
	}
	if rows == 0 {
		return nil
	}
	m.qt = &quantTier{
		scales: p.Scales, errs: p.Errs, offs: p.Offs, data: p.Data,
		clusterOf: p.ClusterOf, resCent: p.ResCent, resSpread: p.ResSpread,
		boxMin: p.BoxMin, boxMax: p.BoxMax,
		adopted: adopted,
	}
	m.buildMembers(m.qt)
	m.markPointMass(m.qt)
	return nil
}
