package wordvec

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// scanHit is one yielded (row, dot) pair; tests compare hit slices with
// reflect.DeepEqual so rows, bits, and order must all agree.
type scanHit struct {
	row int
	dot float64
}

// adversarialRow is a unit vector shaped to defeat int8 quantization: one
// dominant component sets the scale, and every other component sits near a
// half code step so the rounding errors accumulate past quantErrCap and the
// row must fall back to int16 codes.
func adversarialRow() Vector {
	var v Vector
	v[0] = 1
	for i := 1; i < Dim; i++ {
		v[i] = 0.004
	}
	normalize(&v)
	return v
}

// quantCorpus builds a corpus exercising every quantization edge: phrase
// vectors, random units, exact-duplicate blocks large enough for point-mass
// clusters, zero rows, and int16-fallback rows.
func quantCorpus(t *testing.T, seed int64) []Vector {
	t.Helper()
	m := NewModel()
	rng := rand.New(rand.NewSource(seed))
	var vecs []Vector
	vecs = append(vecs, phraseCorpus(m)...)
	for i := 0; i < 40; i++ {
		vecs = append(vecs, randomUnit(rng))
	}
	// Exact duplicates, interleaved with the rest like a fleet corpus.
	dupA := m.PhraseVector([]string{"fetch", "mail"})
	dupB := m.PhraseVector([]string{"crash", "launch"})
	for i := 0; i < 3*quantDupMin; i++ {
		vecs = append(vecs, dupA, dupB, randomUnit(rng))
	}
	var zero Vector
	vecs = append(vecs, zero, zero)
	vecs = append(vecs, adversarialRow())
	// Near-duplicate decorated variants of a shared base.
	base := m.PhraseVector([]string{"send", "message"})
	for i := 0; i < 6; i++ {
		v := base
		v[i%Dim] += 0.05
		normalize(&v)
		vecs = append(vecs, v)
	}
	return vecs
}

// buildQuantPair builds a float-only matrix and a forced-quantized matrix
// over the identical flattened rows.
func buildQuantPair(t *testing.T, vecs []Vector) (*Matrix, *Matrix) {
	t.Helper()
	mat := NewMatrix(len(vecs))
	for _, v := range vecs {
		mat.Append(v)
	}
	mat.Finish()
	proj, res := mat.Sketch()
	qmat, err := MatrixFromParts(mat.Data(), proj, res)
	if err != nil {
		t.Fatalf("MatrixFromParts: %v", err)
	}
	if !qmat.EnsureQuantForce() {
		t.Fatal("EnsureQuantForce returned false on a non-empty matrix")
	}
	return mat, qmat
}

// collectScan gathers the yields of a (possibly chunked) threshold scan plus
// the summed counts.
func collectScan(m *Matrix, q *Query, threshold float64, chunks int) ([]scanHit, ScanCount) {
	var hits []scanHit
	var sc ScanCount
	n := m.Rows()
	for c := 0; c < chunks; c++ {
		start, end := c*n/chunks, (c+1)*n/chunks
		got := m.ScanThresholdCount(q, threshold, start, end, func(row int, dot float64) {
			hits = append(hits, scanHit{row, dot})
		})
		sc.Merge(got)
	}
	return hits, sc
}

// TestQuantScanMatchesFloat is the tier's property test: across seeds,
// thresholds, and chunk partitions, the quantized scan must yield exactly
// the float scan's (row, dot) pairs — same rows, same bits, same order —
// and its counts must be partition-invariant.
func TestQuantScanMatchesFloat(t *testing.T) {
	model := NewModel()
	queries := [][]string{
		{"fetch", "mail"}, {"send", "message"}, {"upload", "photo"},
		{"zorblax", "quux"}, {"crash", "launch"},
	}
	for _, seed := range []int64{3, 5, 7, 9, 21} {
		vecs := quantCorpus(t, seed)
		mat, qmat := buildQuantPair(t, vecs)
		rng := rand.New(rand.NewSource(seed + 100))
		qvs := []Vector{randomUnit(rng), {}}
		for _, p := range queries {
			qvs = append(qvs, model.PhraseVector(p))
		}
		for qi, qv := range qvs {
			q := PrepareQuery(qv)
			for _, threshold := range []float64{0.3, DefaultThreshold, 0.9} {
				want, _ := collectScan(mat, &q, threshold, 1)
				var ref ScanCount
				for ci, chunks := range []int{1, 4, 7} {
					got, sc := collectScan(qmat, &q, threshold, chunks)
					if len(want) == 0 && len(got) == 0 {
						// DeepEqual distinguishes nil from empty.
					} else if !reflect.DeepEqual(got, want) {
						t.Fatalf("seed %d query %d threshold %v chunks %d: quant yields diverge from float", seed, qi, threshold, chunks)
					}
					if ci == 0 {
						ref = sc
					} else if sc != ref {
						t.Fatalf("seed %d query %d threshold %v chunks %d: counts %+v != sequential %+v", seed, qi, threshold, chunks, sc, ref)
					}
					if sc.Matched != len(want) {
						t.Fatalf("seed %d query %d: matched %d but yielded %d", seed, qi, sc.Matched, len(want))
					}
				}
			}
		}
	}
}

// TestQuantAnyAtLeastMatchesFloat: the existence scan must agree with the
// float path on every subrange (the quantized tier routes it through the
// per-row filters without the cluster pass).
func TestQuantAnyAtLeastMatchesFloat(t *testing.T) {
	model := NewModel()
	vecs := quantCorpus(t, 11)
	mat, qmat := buildQuantPair(t, vecs)
	n := mat.Rows()
	for qi, p := range [][]string{{"fetch", "mail"}, {"delete", "file"}, {"zorblax", "quux"}} {
		q := PrepareQuery(model.PhraseVector(p))
		for _, span := range [][2]int{{0, n}, {0, n / 2}, {n / 2, n}, {3, 5}, {n, n}} {
			want := mat.AnyAtLeast(&q, DefaultThreshold, span[0], span[1])
			got, _ := qmat.AnyAtLeastCount(&q, DefaultThreshold, span[0], span[1])
			if got != want {
				t.Fatalf("query %d span %v: quant AnyAtLeast %v, float %v", qi, span, got, want)
			}
		}
	}
}

// TestQuantRowBoundSound: the per-row integer bound must dominate the exact
// dot for every (query, row) pair — the rescue margin quantEps covers only
// bound-arithmetic rounding, so the raw bound itself should already clear
// the dot up to that epsilon.
func TestQuantRowBoundSound(t *testing.T) {
	model := NewModel()
	vecs := quantCorpus(t, 13)
	_, qmat := buildQuantPair(t, vecs)
	rng := rand.New(rand.NewSource(17))
	qvs := []Vector{
		model.PhraseVector([]string{"fetch", "mail"}),
		model.PhraseVector([]string{"validate", "email", "address"}),
		randomUnit(rng), randomUnit(rng), adversarialRow(),
	}
	for qi, qv := range qvs {
		q := PrepareQuery(qv)
		for r := 0; r < qmat.Rows(); r++ {
			exact := dotRow(&q.Vec, qmat.Row(r))
			if up := qmat.qt.rowUpper(&q, r); up+quantEps < exact {
				t.Fatalf("query %d row %d: integer bound %v below exact dot %v", qi, r, up, exact)
			}
		}
	}
}

// TestQuantClusterBoundSound: no row whose exact dot reaches the cutoff may
// sit in a cluster the compound bound declared dead.
func TestQuantClusterBoundSound(t *testing.T) {
	model := NewModel()
	vecs := quantCorpus(t, 19)
	_, qmat := buildQuantPair(t, vecs)
	rng := rand.New(rand.NewSource(23))
	qvs := []Vector{
		model.PhraseVector([]string{"crash", "launch"}),
		model.PhraseVector([]string{"sync", "calendar"}),
		randomUnit(rng), randomUnit(rng),
	}
	for qi, qv := range qvs {
		q := PrepareQuery(qv)
		for _, threshold := range []float64{0.2, DefaultThreshold, 0.95} {
			cutoff := threshold - quantEps
			var live [quantMaxClusters]bool
			qmat.qt.liveClusters(&q, cutoff, &live)
			for r := 0; r < qmat.Rows(); r++ {
				if dotRow(&q.Vec, qmat.Row(r)) >= threshold && !live[qmat.qt.clusterOf[r]] {
					t.Fatalf("query %d threshold %v: matching row %d in dead cluster %d", qi, threshold, r, qmat.qt.clusterOf[r])
				}
			}
		}
	}
}

// TestQuantInt16Fallback: the adversarial half-step row must exceed the int8
// error cap and be stored as int16 codes, and every stored error must obey
// the cap it was admitted under.
func TestQuantInt16Fallback(t *testing.T) {
	vecs := quantCorpus(t, 29)
	_, qmat := buildQuantPair(t, vecs)
	p, ok := qmat.Quant()
	if !ok {
		t.Fatal("Quant() reported no tier after EnsureQuantForce")
	}
	wide := 0
	for r := 0; r < qmat.Rows(); r++ {
		w := int(p.Offs[r+1] - p.Offs[r])
		switch w {
		case Dim:
			if p.Errs[r] > quantErrCap {
				t.Fatalf("row %d kept int8 codes with error %v over the cap", r, p.Errs[r])
			}
		case 2 * Dim:
			wide++
		default:
			t.Fatalf("row %d spans %d code bytes", r, w)
		}
	}
	if wide == 0 {
		t.Fatal("adversarial corpus produced no int16-fallback rows")
	}
}

// TestQuantPointMassClusters: fleet-style exact-duplicate blocks must land
// in clusters flagged point-mass, and only bitwise-identical member sets may
// ever be flagged.
func TestQuantPointMassClusters(t *testing.T) {
	vecs := quantCorpus(t, 31)
	_, qmat := buildQuantPair(t, vecs)
	tier := qmat.qt
	flagged := 0
	for j, pm := range tier.pointMass {
		members := tier.memberRows[tier.clusterStart[j]:tier.clusterStart[j+1]]
		if !pm {
			continue
		}
		flagged++
		first := qmat.Row(int(members[0]))
		for _, r := range members[1:] {
			if !reflect.DeepEqual(qmat.Row(int(r)), first) {
				t.Fatalf("point-mass cluster %d holds non-identical rows", j)
			}
		}
	}
	if flagged == 0 {
		t.Fatal("duplicate-heavy corpus produced no point-mass clusters")
	}
}

// TestQuantRoundTrip: Quant() parts adopted into a fresh matrix over the
// same rows must scan identically and re-serialize to identical parts.
func TestQuantRoundTrip(t *testing.T) {
	model := NewModel()
	vecs := quantCorpus(t, 37)
	mat, qmat := buildQuantPair(t, vecs)
	parts, ok := qmat.Quant()
	if !ok {
		t.Fatal("Quant() reported no tier")
	}
	proj, res := mat.Sketch()
	fresh, err := MatrixFromParts(mat.Data(), proj, res)
	if err != nil {
		t.Fatalf("MatrixFromParts: %v", err)
	}
	if err := fresh.AdoptQuant(parts, true); err != nil {
		t.Fatalf("AdoptQuant: %v", err)
	}
	if !fresh.HasQuant() {
		t.Fatal("adopted matrix reports no tier")
	}
	q := PrepareQuery(model.PhraseVector([]string{"fetch", "mail"}))
	want, wantSC := collectScan(qmat, &q, DefaultThreshold, 1)
	got, gotSC := collectScan(fresh, &q, DefaultThreshold, 1)
	if !reflect.DeepEqual(got, want) || gotSC != wantSC {
		t.Fatal("adopted tier scans differently from the built tier")
	}
	reParts, ok := fresh.Quant()
	if !ok {
		t.Fatal("re-Quant reported no tier")
	}
	if !reflect.DeepEqual(reParts, parts) {
		t.Fatal("adopt → Quant round trip changed the serialized parts")
	}
	// An adopted tier charges only the derived index arrays to the heap.
	if hb, fb := fresh.QuantHeapBytes(), qmat.QuantHeapBytes(); hb <= 0 || hb >= fb {
		t.Fatalf("adopted heap bytes %d not in (0, built %d)", hb, fb)
	}
}

// TestAdoptQuantRejectsCorrupt: every structural invariant of the serialized
// parts must be enforced, so a corrupted snapshot can never install a tier
// that would scan unsoundly.
func TestAdoptQuantRejectsCorrupt(t *testing.T) {
	vecs := quantCorpus(t, 41)
	mat, qmat := buildQuantPair(t, vecs)
	good, _ := qmat.Quant()
	cases := []struct {
		name string
		mut  func(p *QuantParts)
	}{
		{"truncated scales", func(p *QuantParts) { p.Scales = p.Scales[:len(p.Scales)-1] }},
		{"truncated offsets", func(p *QuantParts) { p.Offs = p.Offs[:len(p.Offs)-1] }},
		{"nan scale", func(p *QuantParts) { p.Scales[0] = math.NaN() }},
		{"negative error", func(p *QuantParts) { p.Errs[0] = -1 }},
		{"negative spread", func(p *QuantParts) { p.ResSpread[0] = -0.5 }},
		{"cluster out of range", func(p *QuantParts) { p.ClusterOf[0] = uint16(len(p.ResSpread)) }},
		{"bad row width", func(p *QuantParts) { p.Offs[1] = p.Offs[0] + 3 }},
		{"codes length mismatch", func(p *QuantParts) { p.Data = p.Data[:len(p.Data)-1] }},
		{"centroid length mismatch", func(p *QuantParts) { p.ResCent = p.ResCent[:len(p.ResCent)-Dim] }},
		{"no clusters", func(p *QuantParts) {
			p.ResSpread = nil
			p.ResCent = nil
			p.BoxMin = nil
			p.BoxMax = nil
		}},
	}
	proj, res := mat.Sketch()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := good
			p.Scales = append([]float64(nil), good.Scales...)
			p.Errs = append([]float64(nil), good.Errs...)
			p.ResCent = append([]float64(nil), good.ResCent...)
			p.ResSpread = append([]float64(nil), good.ResSpread...)
			p.BoxMin = append([]float64(nil), good.BoxMin...)
			p.BoxMax = append([]float64(nil), good.BoxMax...)
			p.Offs = append([]uint32(nil), good.Offs...)
			p.ClusterOf = append([]uint16(nil), good.ClusterOf...)
			p.Data = append([]byte(nil), good.Data...)
			tc.mut(&p)
			fresh, err := MatrixFromParts(mat.Data(), proj, res)
			if err != nil {
				t.Fatalf("MatrixFromParts: %v", err)
			}
			if err := fresh.AdoptQuant(p, true); err == nil {
				t.Fatal("AdoptQuant accepted corrupted parts")
			}
			if fresh.HasQuant() {
				t.Fatal("rejected adopt still installed a tier")
			}
		})
	}
}

// TestEnsureQuantGate: matrices under quantMinRows stay on the float path
// unless forced, and the heap accounting follows the tier.
func TestEnsureQuantGate(t *testing.T) {
	model := NewModel()
	mat := NewMatrix(8)
	for i := 0; i < 8; i++ {
		mat.Append(model.PhraseVector([]string{"word", fmt.Sprintf("n%d", i)}))
	}
	mat.Finish()
	if mat.EnsureQuant() {
		t.Fatal("EnsureQuant built a tier under the row gate")
	}
	if mat.HasQuant() || mat.QuantHeapBytes() != 0 || mat.QuantClusters() != 0 {
		t.Fatal("gated matrix reports tier state")
	}
	if _, ok := mat.Quant(); ok {
		t.Fatal("Quant() returned parts without a tier")
	}
	if !mat.EnsureQuantForce() {
		t.Fatal("EnsureQuantForce failed on a non-empty matrix")
	}
	if !mat.HasQuant() || mat.QuantHeapBytes() <= 0 || mat.QuantClusters() < 1 {
		t.Fatal("forced tier missing state")
	}
}
