// Package wordvec provides the word-embedding model that ReviewSolver uses
// to decide whether a review phrase and a code-derived phrase have the same
// meaning (§4.1.1): each word maps to a vector, a phrase vector is the mean
// of its word vectors, and two phrases match when their cosine similarity
// reaches the threshold (0.68 in the paper, following AutoCog).
//
// The paper uses word2vec trained on Google News (3M words × 300 dims). That
// model cannot ship in an offline stdlib-only reproduction, so this package
// substitutes a deterministic constructed embedding: every word receives a
// hash-seeded base vector, and a curated synonym lexicon ties related words
// to shared anchor directions (same synonym group → cosine ≈ 0.8, same
// broader topic → cosine ≈ 0.35, unrelated → cosine ≈ 0). The decision the
// downstream code makes — "is 'save picture' similar to 'set video source'?"
// — therefore behaves like the original: synonyms match, topical words are
// related but below threshold, unrelated words never match.
package wordvec

import (
	"hash/fnv"
	"math"
	"sync"

	"reviewsolver/internal/textproc"
)

// Dim is the dimensionality of the embedding vectors.
const Dim = 64

// DefaultThreshold is the phrase-similarity threshold from the paper
// (§4.1.1, following AutoCog).
const DefaultThreshold = 0.68

// Vector is an embedding vector.
type Vector [Dim]float64

// Model maps words to vectors. A Model is safe for concurrent use: word
// vectors are deterministic functions of the word, and the memo cache is
// guarded by a read-write lock, so any number of goroutines may share one
// model (the core.Snapshot layer relies on this).
type Model struct {
	mu        sync.RWMutex
	cache     map[string]Vector
	groupOf   map[string]int // word → synonym group index
	topicOf   map[int]string // group index → topic anchor name
	threshold float64
}

// Option configures a Model.
type Option func(*Model)

// WithThreshold overrides the phrase-similarity threshold.
func WithThreshold(t float64) Option {
	return func(m *Model) { m.threshold = t }
}

// NewModel builds the embedding model over the built-in synonym lexicon.
func NewModel(opts ...Option) *Model {
	m := &Model{
		cache:     make(map[string]Vector, 512),
		groupOf:   make(map[string]int, 512),
		topicOf:   make(map[int]string, len(synonymGroups)),
		threshold: DefaultThreshold,
	}
	for gi, g := range synonymGroups {
		m.topicOf[gi] = g.topic
		for _, w := range g.words {
			m.groupOf[w] = gi
		}
	}
	for _, opt := range opts {
		opt(m)
	}
	return m
}

// Threshold returns the similarity threshold in use.
func (m *Model) Threshold() float64 { return m.threshold }

// Coefficients mixing the anchor directions into a word vector. Chosen so
// that same-group words have cosine ≈ topicW²+groupW² ≈ 0.81 (well above the
// 0.68 threshold), same-topic/different-group words ≈ topicW² ≈ 0.30 (well
// below), and unrelated words ≈ 0.
const (
	topicWeight = 0.55
	groupWeight = 0.71
	noiseWeight = 0.44
)

// Vector returns the embedding of a lower-cased word. Vectors are memoised;
// concurrent first-use of the same word may compute it twice, but both
// computations produce the identical deterministic vector.
func (m *Model) Vector(word string) Vector {
	m.mu.RLock()
	v, ok := m.cache[word]
	m.mu.RUnlock()
	if ok {
		return v
	}
	v = m.computeVector(word)
	m.mu.Lock()
	m.cache[word] = v
	m.mu.Unlock()
	return v
}

// computeVector derives the deterministic embedding of one word.
func (m *Model) computeVector(word string) Vector {
	var v Vector
	if gi, ok := m.groupOf[word]; ok {
		topic := hashVector("topic:" + m.topicOf[gi])
		group := hashVector("group:" + synonymGroups[gi].anchor())
		noise := hashVector("word:" + word)
		for i := 0; i < Dim; i++ {
			v[i] = topicWeight*topic[i] + groupWeight*group[i] + noiseWeight*noise[i]
		}
	} else {
		// Out-of-lexicon words: morphological root sharing. "crashing" and
		// "crash" share a stem anchor so inflected forms still match.
		stem := stemOf(word)
		base := hashVector("stem:" + stem)
		noise := hashVector("word:" + word)
		for i := 0; i < Dim; i++ {
			v[i] = 0.93*base[i] + 0.37*noise[i]
		}
	}
	normalize(&v)
	return v
}

// PhraseVector returns the normalized mean vector of the phrase's words,
// per the paper's Vector(phrase) = (1/n) Σ Vector(word_i). Stopwords are
// kept (the paper averages all words); empty input yields the zero vector.
func (m *Model) PhraseVector(words []string) Vector {
	var v Vector
	if len(words) == 0 {
		return v
	}
	n := 0
	for _, w := range words {
		wv := m.Vector(w)
		for i := 0; i < Dim; i++ {
			v[i] += wv[i]
		}
		n++
	}
	if n == 0 {
		return v
	}
	for i := 0; i < Dim; i++ {
		v[i] /= float64(n)
	}
	normalize(&v)
	return v
}

// Similarity returns the cosine similarity of two phrases given as word
// slices.
func (m *Model) Similarity(a, b []string) float64 {
	return Cosine(m.PhraseVector(a), m.PhraseVector(b))
}

// SimilarityText tokenizes two phrase strings and returns their similarity.
func (m *Model) SimilarityText(a, b string) float64 {
	return m.Similarity(textproc.Words(a), textproc.Words(b))
}

// Similar reports whether two phrases meet the similarity threshold.
func (m *Model) Similar(a, b []string) bool {
	return m.Similarity(a, b) >= m.threshold
}

// SimilarText reports whether two phrase strings meet the threshold.
func (m *Model) SimilarText(a, b string) bool {
	return m.SimilarityText(a, b) >= m.threshold
}

// WordSimilarity returns the cosine similarity of two single words.
func (m *Model) WordSimilarity(a, b string) float64 {
	return Cosine(m.Vector(a), m.Vector(b))
}

// Cosine returns the cosine similarity of two vectors (0 for zero vectors).
func Cosine(a, b Vector) float64 {
	var dot, na, nb float64
	for i := 0; i < Dim; i++ {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// hashVector derives a deterministic unit vector from a seed string using
// FNV-1a driven xorshift.
func hashVector(seed string) Vector {
	h := fnv.New64a()
	_, _ = h.Write([]byte(seed))
	state := h.Sum64()
	if state == 0 {
		state = 0x9e3779b97f4a7c15
	}
	var v Vector
	for i := 0; i < Dim; i++ {
		// xorshift64*
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		u := state * 0x2545f4914f6cdd1d
		// Map to roughly standard normal via sum of uniforms (CLT, 4 terms).
		s := 0.0
		for k := 0; k < 4; k++ {
			s += float64((u>>(k*16))&0xffff)/65535.0 - 0.5
		}
		v[i] = s
	}
	normalize(&v)
	return v
}

func normalize(v *Vector) {
	var n float64
	for i := 0; i < Dim; i++ {
		n += v[i] * v[i]
	}
	if n == 0 {
		return
	}
	n = math.Sqrt(n)
	for i := 0; i < Dim; i++ {
		v[i] /= n
	}
}

// stemOf reduces simple English inflections so out-of-lexicon word forms
// share an anchor ("crashing"/"crashed"/"crashes" → "crash").
func stemOf(w string) string {
	switch {
	case len(w) > 5 && w[len(w)-3:] == "ing":
		w = w[:len(w)-3]
	case len(w) > 4 && w[len(w)-2:] == "ed":
		w = w[:len(w)-2]
	case len(w) > 4 && w[len(w)-2:] == "es":
		w = w[:len(w)-2]
	case len(w) > 3 && w[len(w)-1] == 's' && w[len(w)-2] != 's':
		w = w[:len(w)-1]
	}
	// Undouble final consonant ("stopp" → "stop").
	if len(w) > 3 && w[len(w)-1] == w[len(w)-2] && !isVowel(w[len(w)-1]) {
		w = w[:len(w)-1]
	}
	return w
}

func isVowel(c byte) bool {
	switch c {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}
