package wordvec

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestVectorDeterministic(t *testing.T) {
	m1, m2 := NewModel(), NewModel()
	for _, w := range []string{"mail", "picture", "zzzunknown"} {
		if m1.Vector(w) != m2.Vector(w) {
			t.Errorf("vector for %q differs across models", w)
		}
	}
}

func TestVectorNormalized(t *testing.T) {
	m := NewModel()
	for _, w := range []string{"mail", "send", "qwertyuiop"} {
		v := m.Vector(w)
		var n float64
		for _, x := range v {
			n += x * x
		}
		if math.Abs(n-1) > 1e-9 {
			t.Errorf("|v(%q)|² = %f, want 1", w, n)
		}
	}
}

func TestSynonymSimilarity(t *testing.T) {
	m := NewModel()
	// Same-group pairs must exceed the threshold.
	sameGroup := [][2]string{
		{"mail", "email"},
		{"picture", "video"},
		{"photo", "image"},
		// "post" itself is claimed by the content topic, so test with
		// "publish" which stays in the upload group.
		{"upload", "publish"},
		{"fetch", "get"},
		{"crash", "die"},
		{"sms", "message"},
	}
	for _, p := range sameGroup {
		if got := m.WordSimilarity(p[0], p[1]); got < DefaultThreshold {
			t.Errorf("WordSimilarity(%q,%q) = %.3f, want >= %.2f", p[0], p[1], got, DefaultThreshold)
		}
	}
	// Same-topic, different-group pairs must be related but below threshold.
	sameTopic := [][2]string{
		{"mail", "sms"},
		{"camera", "picture"},
		{"server", "connect"},
		{"send", "upload"},
	}
	for _, p := range sameTopic {
		got := m.WordSimilarity(p[0], p[1])
		if got >= DefaultThreshold {
			t.Errorf("WordSimilarity(%q,%q) = %.3f, want < threshold", p[0], p[1], got)
		}
		if got < 0.1 {
			t.Errorf("WordSimilarity(%q,%q) = %.3f, want topical relation > 0.1", p[0], p[1], got)
		}
	}
	// Unrelated pairs must be near zero.
	unrelated := [][2]string{
		{"mail", "crossword"},
		{"camera", "password"},
		{"time", "certificate"},
	}
	for _, p := range unrelated {
		if got := m.WordSimilarity(p[0], p[1]); got >= 0.5 {
			t.Errorf("WordSimilarity(%q,%q) = %.3f, want < 0.5", p[0], p[1], got)
		}
	}
}

func TestInflectionSharing(t *testing.T) {
	m := NewModel()
	// Out-of-lexicon inflected forms share a stem anchor.
	if got := m.WordSimilarity("flibbering", "flibber"); got < 0.6 {
		t.Errorf("stem similarity = %.3f, want >= 0.6", got)
	}
}

func TestPhraseSimilarityPaperExamples(t *testing.T) {
	m := NewModel()
	tests := []struct {
		a, b string
		want bool
	}{
		// §2.3 Example 1: "fetch mail" ≈ "get email".
		{"fetch mail", "get email", true},
		// §1: "save picture" ≈ "set video source" — picture ≈ video carries it
		// only partially; the paper maps via the media words. Check the noun pair.
		{"save picture", "save video", true},
		// §2.3 Example 2: "send sms" ≈ "send text message".
		{"send sms", "send text message", true},
		// Dissimilar phrases must not match.
		{"fetch mail", "take picture", false},
		{"register account", "play music", false},
	}
	for _, tt := range tests {
		if got := m.SimilarText(tt.a, tt.b); got != tt.want {
			t.Errorf("SimilarText(%q,%q) = %v (sim %.3f), want %v",
				tt.a, tt.b, got, m.SimilarityText(tt.a, tt.b), tt.want)
		}
	}
}

func TestCosineProperties(t *testing.T) {
	m := NewModel()
	identical := func(s string) bool {
		if s == "" {
			return true
		}
		v := m.Vector(s)
		return math.Abs(Cosine(v, v)-1) < 1e-9
	}
	if err := quick.Check(identical, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
	symmetric := func(a, b string) bool {
		if a == "" || b == "" {
			return true
		}
		return math.Abs(m.WordSimilarity(a, b)-m.WordSimilarity(b, a)) < 1e-12
	}
	if err := quick.Check(symmetric, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
	bounded := func(a, b string) bool {
		s := m.WordSimilarity(a, b)
		return s >= -1.0000001 && s <= 1.0000001
	}
	if err := quick.Check(bounded, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEmptyPhrase(t *testing.T) {
	m := NewModel()
	v := m.PhraseVector(nil)
	for _, x := range v {
		if x != 0 {
			t.Fatal("empty phrase should be the zero vector")
		}
	}
	if got := m.Similarity(nil, []string{"mail"}); got != 0 {
		t.Errorf("similarity with empty phrase = %f, want 0", got)
	}
}

func TestThresholdOption(t *testing.T) {
	m := NewModel(WithThreshold(0.95))
	if m.Threshold() != 0.95 {
		t.Fatalf("threshold = %f", m.Threshold())
	}
	if m.SimilarText("fetch mail", "get email") {
		t.Error("0.95 threshold should reject the fetch-mail/get-email pair")
	}
}

func TestGroupCount(t *testing.T) {
	if GroupCount() < 60 {
		t.Errorf("synonym lexicon suspiciously small: %d groups", GroupCount())
	}
}

// TestConcurrentVector exercises the lock-guarded memo cache: concurrent
// first-use of the same words must be race-free and produce the same
// deterministic vectors a cold sequential model computes.
func TestConcurrentVector(t *testing.T) {
	words := []string{
		"mail", "email", "photo", "crash", "login", "upload", "download",
		"message", "button", "screen", "fetch", "send", "sync", "account",
	}
	ref := NewModel()
	want := make([]Vector, len(words))
	for i, w := range words {
		want[i] = ref.Vector(w)
	}

	shared := NewModel()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				for i, w := range words {
					if got := shared.Vector(w); got != want[i] {
						t.Errorf("goroutine %d: Vector(%q) diverged", g, w)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
